"""Shamir secret sharing over the scalar field of the Schnorr group.

Shamir sharing is the common substrate of the three threshold primitives
(threshold signatures, threshold coin flipping, threshold encryption): a
dealer samples a degree-``t`` polynomial ``f`` with ``f(0)`` the secret and
hands ``f(i)`` to node ``i``.  Any ``t + 1`` shares reconstruct the secret (or,
for the threshold primitives, combine "in the exponent" without ever
reconstructing it); ``t`` or fewer reveal nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.field import (
    FieldError,
    Polynomial,
    PrimeField,
    interpolate_at_zero,
)


class ShamirError(ValueError):
    """Raised for invalid sharing parameters or malformed shares."""


@dataclass(frozen=True)
class ShamirShare:
    """One party's share: the evaluation ``f(index)`` of the dealer polynomial."""

    index: int
    value: int

    def as_point(self) -> tuple[int, int]:
        """Return the share as an ``(x, y)`` interpolation point."""
        return (self.index, self.value)


class ShamirDealer:
    """Deals and recombines Shamir shares for an ``(threshold, n)`` scheme.

    ``threshold`` is the number of shares *required* to reconstruct, i.e. the
    polynomial degree is ``threshold - 1``.  In the BFT setting with
    ``n = 3f + 1`` nodes the schemes in this package use ``threshold = f + 1``
    (coin, encryption) or ``threshold = 2f + 1`` (signatures proving quorum
    participation), following HoneyBadgerBFT/Dumbo conventions.
    """

    def __init__(self, field: PrimeField, num_parties: int, threshold: int) -> None:
        if num_parties < 1:
            raise ShamirError(f"need at least one party, got {num_parties}")
        if not 1 <= threshold <= num_parties:
            raise ShamirError(
                f"threshold must be in [1, {num_parties}], got {threshold}")
        self.field = field
        self.num_parties = num_parties
        self.threshold = threshold

    def deal(self, secret: int, rng) -> list[ShamirShare]:
        """Split ``secret`` into ``num_parties`` shares."""
        polynomial = Polynomial.random(self.field, degree=self.threshold - 1,
                                       constant=secret, rng=rng)
        return [ShamirShare(index=i, value=polynomial.evaluate(i))
                for i in range(1, self.num_parties + 1)]

    def recover(self, shares: Sequence[ShamirShare]) -> int:
        """Reconstruct the secret from at least ``threshold`` distinct shares.

        Repeated submissions of the *same* share (same field-reduced index,
        same value -- e.g. a retransmitted message) are deduplicated before
        the threshold shares are selected, in first-seen order.  Two shares
        claiming the same index with *different* values are contradictory --
        at least one is forged -- and raise :class:`ShamirError` naming the
        offending index rather than silently interpolating garbage.
        """
        distinct: dict[int, ShamirShare] = {}
        for share in shares:
            index = self.field.reduce(share.index)
            if index == 0:
                raise ShamirError("share index 0 is reserved for the secret")
            known = distinct.get(index)
            if known is None:
                distinct[index] = share
            elif self.field.reduce(known.value) != self.field.reduce(share.value):
                raise ShamirError(
                    f"conflicting values for share index {share.index}")
        if len(distinct) < self.threshold:
            raise ShamirError(
                f"need {self.threshold} distinct shares, got {len(distinct)}")
        points = [share.as_point()
                  for share in list(distinct.values())[: self.threshold]]
        try:
            return interpolate_at_zero(self.field, points)
        except FieldError as exc:  # zero index after reduction etc.
            raise ShamirError(str(exc)) from exc


def split_secret(secret: int, num_parties: int, threshold: int, field: PrimeField,
                 rng) -> list[ShamirShare]:
    """Convenience wrapper around :class:`ShamirDealer.deal`."""
    return ShamirDealer(field, num_parties, threshold).deal(secret, rng)


def recover_secret(shares: Sequence[ShamirShare], threshold: int,
                   field: PrimeField) -> int:
    """Convenience wrapper around :class:`ShamirDealer.recover`."""
    if not shares:
        raise ShamirError(f"need {threshold} distinct shares, got 0")
    num_parties = max(max(share.index for share in shares), threshold)
    return ShamirDealer(field, num_parties, threshold).recover(list(shares))
