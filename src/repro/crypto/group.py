"""A Schnorr group: the prime-order subgroup of ``Z_P^*`` for a safe prime P.

The paper's cryptographic module uses pairing-friendly curves (BN158, BN254,
BLS12-381, ...) via MIRACL.  Pairings are not available offline in pure
Python at a reasonable cost, so every pairing-based construction in this
reproduction is replaced by its discrete-log analogue in this group:

* BLS threshold signatures  -> threshold "group signatures" ``H(m)^s`` with
  Chaum-Pedersen share-correctness proofs,
* the threshold common coin -> Cachin-Kursawe-Shoup DDH coin ``H(tag)^s``,
* threshold encryption      -> labelled threshold ElGamal.

These substitutions preserve exactly the properties consensus relies on
(shares combine iff at least ``t+1`` are valid, invalid shares are detected,
outputs are unpredictable to fewer than ``t+1`` parties) while staying cheap
enough for simulation.  The *cost* of the original pairing operations is
modelled separately by :mod:`repro.crypto.curves`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache
from typing import Sequence

from repro.crypto import backend as crypto_backend
from repro.crypto.fastpath import (
    FixedBaseTable,
    batch_randomizer_seed,
    expand_batch_randomizers,
    multi_exp,
)
from repro.crypto.field import PrimeField

# 256-bit safe prime P = 2q + 1 generated once with a fixed seed (see DESIGN.md).
_SAFE_PRIME_P = 105216956437749856470442369914846542332764088290024751311797079457000279170143
_SUBGROUP_ORDER_Q = 52608478218874928235221184957423271166382044145012375655898539728500139585071
_GENERATOR = 49  # 7^2 mod P, a generator of the order-q subgroup.


# Hot-path caches, keyed by the group parameters so arbitrary Group instances
# (including the toy groups used in tests) share them safely.  All cached
# functions are pure: the cache can only change speed, never results.
_FIXED_BASE_TABLES: dict[tuple[int, int, int], FixedBaseTable] = {}


def _fixed_base_table(p: int, q: int, g: int) -> FixedBaseTable:
    key = (p, q, g)
    table = _FIXED_BASE_TABLES.get(key)
    if table is None:
        table = FixedBaseTable(g, p, q)
        _FIXED_BASE_TABLES[key] = table
    return table


@lru_cache(maxsize=16384)
def _is_member_cached(p: int, q: int, a: int) -> bool:
    if not 1 <= a < p:
        return False
    if p == 2 * q + 1:
        # Safe prime: the order-q subgroup is exactly the quadratic residues,
        # so a Jacobi symbol replaces the ~5x costlier pow(a, q, p) test.
        return crypto_backend.jacobi(a, p) == 1
    return crypto_backend.powm(a, q, p) == 1


@lru_cache(maxsize=128)
def _verify_key_table(p: int, q: int, base: int) -> FixedBaseTable:
    """Fixed-base table for a share verify key (used by batch verification).

    Verify keys are fixed for the lifetime of a public key and every batch
    exponentiates all of them, so a windowed table (~1 ms to build, ~115 KB
    at window 6) amortises within the first few batches.  Only public verify
    keys reach this cache -- per-share values never do -- and the LRU bound
    caps worst-case memory at ~15 MB.
    """
    return FixedBaseTable(base, p, q, window=6)


def _hash_to_scalar(q: int, parts: tuple[bytes, ...]) -> int:
    """The one definition of scalar derivation shared by the cached and
    reference hash-to-group paths (see ``_challenge`` for the rationale)."""
    digest = hashlib.sha512(b"\x00".join(parts)).digest()
    return int.from_bytes(digest, "big") % q


@lru_cache(maxsize=8192)
def _hash_to_group_cached(p: int, q: int, g: int, parts: tuple[bytes, ...]) -> int:
    exponent = _hash_to_scalar(q, (b"h2g",) + parts)
    return _fixed_base_table(p, q, g).pow(exponent if exponent != 0 else 1)


@dataclass(frozen=True)
class Group:
    """A cyclic group of prime order ``q`` written multiplicatively.

    Elements are integers in ``Z_P^*`` belonging to the order-``q`` subgroup;
    exponents live in the scalar field ``F_q``.
    """

    p: int
    q: int
    g: int
    # byte widths of the canonical encodings, derived once: element_to_bytes
    # runs ~50x per combine and bit_length() on a 256-bit int is not free
    _element_size: int = dataclass_field(init=False, repr=False, compare=False)
    _scalar_size: int = dataclass_field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_element_size",
                           (self.p.bit_length() + 7) // 8)
        object.__setattr__(self, "_scalar_size",
                           (self.q.bit_length() + 7) // 8)

    @property
    def scalar_field(self) -> PrimeField:
        """The field of exponents ``F_q``."""
        return PrimeField(self.q)

    # ----------------------------------------------------------- group ops
    def exp(self, base: int, exponent: int) -> int:
        """Return ``base ** exponent mod P`` (via the active crypto backend)."""
        return crypto_backend.powm(base, exponent % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        """Return the group product ``a * b mod P``."""
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        """Return the group inverse of ``a``."""
        return pow(a, -1, self.p)

    def power_of_g(self, exponent: int) -> int:
        """Return ``g ** exponent`` via the fixed-base windowed table."""
        return _fixed_base_table(self.p, self.q, self.g).pow(exponent)

    def power_of_g_reference(self, exponent: int) -> int:
        """Uncached/naive ``g ** exponent`` (the seed implementation)."""
        return self.exp(self.g, exponent)

    def is_member(self, a: int) -> bool:
        """True if ``a`` is a member of the order-``q`` subgroup.

        Memoised; for safe primes the test is a Jacobi symbol rather than a
        full exponentiation (identical results, ~5x faster).
        """
        return _is_member_cached(self.p, self.q, a)

    def is_member_reference(self, a: int) -> bool:
        """Uncached membership test ``a^q == 1 mod p`` (the seed implementation)."""
        if not 1 <= a < self.p:
            return False
        return pow(a, self.q, self.p) == 1

    # --------------------------------------------------------------- hashing
    def hash_to_scalar(self, *parts: bytes) -> int:
        """Hash arbitrary byte strings to an exponent in ``F_q``."""
        return _hash_to_scalar(self.q, parts)

    def hash_to_group(self, *parts: bytes) -> int:
        """Hash arbitrary byte strings to a group element.

        We hash to a scalar ``e`` and return ``g ** e`` -- the discrete log of
        the result is unknown to nobody in this simulation-oriented setting,
        which is acceptable because unforgeability against computationally
        bounded adversaries is not what the consensus experiments exercise.
        """
        return _hash_to_group_cached(self.p, self.q, self.g, parts)

    def hash_to_group_reference(self, *parts: bytes) -> int:
        """Uncached hash-to-group (the seed implementation)."""
        exponent = self.hash_to_scalar(b"h2g", *parts)
        # Avoid the identity element, which would break share verification.
        return self.exp(self.g, exponent if exponent != 0 else 1)

    def random_scalar(self, rng) -> int:
        """Uniformly random non-zero exponent."""
        value = rng.randrange(1, self.q)
        return value

    def element_to_bytes(self, a: int) -> bytes:
        """Canonical byte encoding of a group element (32 bytes + sign pad)."""
        return a.to_bytes(self._element_size, "big")

    def scalar_to_bytes(self, s: int) -> bytes:
        """Canonical byte encoding of a scalar."""
        return (s % self.q).to_bytes(self._scalar_size, "big")


DEFAULT_GROUP = Group(p=_SAFE_PRIME_P, q=_SUBGROUP_ORDER_Q, g=_GENERATOR)


@dataclass(frozen=True)
class ChaumPedersenProof:
    """NIZK proof that ``log_g(v) == log_h(u)`` (discrete-log equality).

    Used to prove that a threshold signature / coin / decryption share was
    computed with the prover's correct key share, without revealing it.
    """

    commitment_g: int
    commitment_h: int
    response: int

    def size_bytes(self) -> int:
        """Wire size of the proof (two group elements + one scalar)."""
        return 3 * 32


def _challenge(group: Group, context: bytes, base_h: int, value_g: int,
               value_h: int, commitment_g: int, commitment_h: int) -> int:
    """The Fiat-Shamir challenge for a Chaum-Pedersen transcript.

    The single definition shared by the prover, both verifiers and the batch
    verifier -- if the transcript format ever changes, it changes everywhere
    at once (a silent mismatch would push every combine onto the per-share
    fallback path and quietly lose the batching speedup).
    """
    return group.hash_to_scalar(
        b"chaum-pedersen", context,
        group.element_to_bytes(base_h),
        group.element_to_bytes(value_g),
        group.element_to_bytes(value_h),
        group.element_to_bytes(commitment_g),
        group.element_to_bytes(commitment_h),
    )


def prove_dlog_equality(group: Group, secret: int, base_h: int,
                        value_g: int, value_h: int, rng,
                        context: bytes = b"") -> ChaumPedersenProof:
    """Produce a Chaum-Pedersen proof for ``value_g = g^secret``, ``value_h = base_h^secret``."""
    nonce = group.random_scalar(rng)
    commitment_g = group.power_of_g(nonce)
    commitment_h = group.exp(base_h, nonce)
    challenge = _challenge(group, context, base_h, value_g, value_h,
                           commitment_g, commitment_h)
    response = (nonce + challenge * secret) % group.q
    return ChaumPedersenProof(commitment_g=commitment_g,
                              commitment_h=commitment_h,
                              response=response)


def verify_dlog_equality(group: Group, proof: ChaumPedersenProof, base_h: int,
                         value_g: int, value_h: int,
                         context: bytes = b"") -> bool:
    """Verify a Chaum-Pedersen discrete-log-equality proof.

    Memoised process-wide: verification is a pure function of the transcript,
    and in a simulated broadcast domain every receiver verifies the *same*
    share, so the n-fold re-verification across simulated nodes collapses to
    one real computation.  The per-node CPU cost model is charged by
    :class:`repro.crypto.timing.CryptoSuite` before this function runs, so
    simulated virtual time is unaffected -- only wall clock.
    """
    return _verify_dlog_equality_cached(
        group.p, group.q, group.g, proof.commitment_g, proof.commitment_h,
        proof.response, base_h, value_g, value_h, context)


@lru_cache(maxsize=32768)
def _verify_dlog_equality_cached(p: int, q: int, g: int, commitment_g: int,
                                 commitment_h: int, response: int, base_h: int,
                                 value_g: int, value_h: int,
                                 context: bytes) -> bool:
    group = Group(p=p, q=q, g=g)
    proof = ChaumPedersenProof(commitment_g=commitment_g,
                               commitment_h=commitment_h, response=response)
    if not (group.is_member(value_g) and group.is_member(value_h)):
        return False
    challenge = _challenge(group, context, base_h, value_g, value_h,
                           proof.commitment_g, proof.commitment_h)
    lhs_g = group.power_of_g(proof.response)
    rhs_g = group.mul(proof.commitment_g, group.exp(value_g, challenge))
    if lhs_g != rhs_g:
        return False
    lhs_h = group.exp(base_h, proof.response)
    rhs_h = group.mul(proof.commitment_h, group.exp(value_h, challenge))
    return lhs_h == rhs_h


def verify_dlog_equality_reference(group: Group, proof: ChaumPedersenProof,
                                   base_h: int, value_g: int, value_h: int,
                                   context: bytes = b"") -> bool:
    """Seed-equivalent verifier that bypasses every cache and fast path.

    Used by the bit-identity property tests and the hot-path micro-benchmarks
    as the "before" implementation: naive membership tests and four full
    ``pow()`` calls per proof.
    """
    if not (group.is_member_reference(value_g)
            and group.is_member_reference(value_h)):
        return False
    challenge = _challenge(group, context, base_h, value_g, value_h,
                           proof.commitment_g, proof.commitment_h)
    lhs_g = group.power_of_g_reference(proof.response)
    rhs_g = group.mul(proof.commitment_g, group.exp(value_g, challenge))
    if lhs_g != rhs_g:
        return False
    lhs_h = group.exp(base_h, proof.response)
    rhs_h = group.mul(proof.commitment_h, group.exp(value_h, challenge))
    return lhs_h == rhs_h


class BatchVerifySession:
    """Cross-epoch memo for batched Chaum-Pedersen verification.

    A streaming run combines the same share batches on every simulated node:
    the per-share verifier already collapses that n-fold repetition through
    ``_verify_dlog_equality_cached``, but each *batch* verification used to
    re-derive its randomizers and re-run the multi-exponentiation per caller.
    A session owned by the run (one per :class:`repro.testbed.streaming.
    StreamingRun`, threaded through every :class:`repro.crypto.timing.
    CryptoSuite`) memoises both:

    * randomizer expansions keyed by the transcript seed digest, so the
      Fiat-Shamir derivation is amortised across the pipeline's per-epoch
      ``verify_shares``/``combine`` calls, and
    * whole-batch verdicts keyed by ``(p, q, g, seed)``, so re-verifying an
      identical batch (another node combining the same epoch's shares) costs
      a dict lookup instead of a multi-exponentiation.

    Both memos are FIFO-bounded.  Verdicts are pure functions of the
    transcript, so a session changes wall-clock time only -- never results;
    the modelled per-node CPU cost is charged by ``CryptoSuite`` upstream.
    """

    __slots__ = ("maxsize", "hits", "misses", "_verdicts", "_randomizers")

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"session maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._verdicts: dict[tuple, bool] = {}
        self._randomizers: dict[tuple[bytes, int], list[int]] = {}

    def randomizers(self, seed: bytes, count: int) -> list[int]:
        """Memoised :func:`repro.crypto.fastpath.expand_batch_randomizers`."""
        key = (seed, count)
        cached = self._randomizers.get(key)
        if cached is None:
            cached = expand_batch_randomizers(seed, count)
            self._evict(self._randomizers)
            self._randomizers[key] = cached
        return cached

    def lookup(self, key: tuple) -> "bool | None":
        """A previously recorded batch verdict, or ``None``."""
        verdict = self._verdicts.get(key)
        if verdict is None:
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def record(self, key: tuple, verdict: bool) -> None:
        """Record a batch verdict for later identical batches."""
        self._evict(self._verdicts)
        self._verdicts[key] = verdict

    def _evict(self, memo: dict) -> None:
        # Drop the oldest half in one rebuild rather than popping the front
        # entry per insert: ``next(iter(dict))`` scans the dict's dead-entry
        # prefix, which grows with every pop (quadratic once the bound is
        # hit -- measured as a 30% combine slowdown at steady state).
        if len(memo) >= self.maxsize:
            keep = self.maxsize // 2
            survivors = list(memo.items())[-keep:] if keep else []
            memo.clear()
            memo.update(survivors)


#: FIFO memos for batched native membership tests, one flat dict per group
#: modulus so the hot lookups hash a bare element instead of a ``(p, a)``
#: tuple.  Semantics mirror ``_is_member_cached`` (results are identical;
#: only call batching differs).
_NATIVE_MEMBER_MEMOS: dict[int, dict[int, bool]] = {}
_NATIVE_MEMBER_MEMO_MAX = 16384


def _batch_members_ok(group: Group, elements: Sequence[int]) -> bool:
    """Subgroup membership for many elements at once.

    On the pure path this is the memoised per-element Jacobi test.  With a
    native big-integer tier active (and a safe-prime group) the uncached
    elements go through one batched ``jacobi_many`` foreign call, which
    turns ~4 Python-level Jacobi evaluations per statement into a single
    libgmp sweep.
    """
    p, q = group.p, group.q
    if not (crypto_backend.has_native_bigint() and p == 2 * q + 1):
        return all(_is_member_cached(p, q, a) for a in elements)
    memo = _NATIVE_MEMBER_MEMOS.get(p)
    if memo is None:
        memo = _NATIVE_MEMBER_MEMOS[p] = {}
    # Verdicts are tracked locally rather than re-read from the memo at the
    # end: the eviction below may push out entries cached by *earlier* calls
    # that this batch still references (regression: KeyError once the memo
    # wrapped around its size bound mid-batch).
    lookup = memo.get
    verdict = True
    fresh: list[int] = []
    seen_fresh: set[int] = set()
    for element in elements:
        known = lookup(element)
        if known is None:
            if element not in seen_fresh:
                seen_fresh.add(element)
                fresh.append(element)
        elif not known:
            verdict = False
    if fresh:
        # only in-range elements ever enter the memo, so anything cached is
        # already validated and the range check runs on the misses alone
        for element in fresh:
            if not 1 <= element < p:
                return False
        symbols = crypto_backend.jacobi_many(fresh, p)
        # Amortised eviction: rebuild with the newest half instead of
        # popping entries one by one (``next(iter(dict))`` walks the dead
        # prefix left by earlier pops, turning per-call eviction quadratic
        # at steady state).  Long-lived keys -- verify keys, hashed message
        # points -- sit in the newest half or get re-probed in one batched
        # jacobi call, so the occasional rebuild costs ~nothing.
        if len(memo) + len(fresh) > _NATIVE_MEMBER_MEMO_MAX:
            survivors = list(memo.items())[-(_NATIVE_MEMBER_MEMO_MAX // 2):]
            memo.clear()
            memo.update(survivors)
        for element, symbol in zip(fresh, symbols):
            member = symbol == 1
            memo[element] = member
            if not member:
                verdict = False
    return verdict


def batch_verify_dlog_equality(group: Group, base_h: int,
                               statements: Sequence[tuple[ChaumPedersenProof, int, int]],
                               context: bytes = b"",
                               session: "BatchVerifySession | None" = None) -> bool:
    """Batch-verify Chaum-Pedersen proofs that share the secondary base.

    ``statements`` is a sequence of ``(proof, value_g, value_h)`` claiming
    ``value_g = g^s`` and ``value_h = base_h^s``.  The check folds all
    ``2n`` proof equations into one product via independent small random
    exponents (derived deterministically from the transcripts, so runs stay
    reproducible): with a 64-bit ``r_i`` weighting statement ``i``'s g-side
    equation and an independent 64-bit ``s_i`` weighting its h-side,

        prod a_i^{r_i} * b_i^{s_i} * v_i^{r_i c_i} * u_i^{s_i c_i}
            * h^{-sum s_i z_i}  ==  g^{sum r_i z_i}

    A batch containing any invalid proof passes with probability at most
    ``2^-63``; callers that need the culprit fall back to per-share
    verification (see ``ThresholdSigPublicKey.verify_shares``).

    Subgroup membership of every ``value_g`` / ``value_h`` *and of both
    proof commitments* is checked exactly (memoised Jacobi test) before
    batching, matching the per-proof verifier's semantics.  The commitment
    checks are load-bearing for soundness, not just hygiene: without them a
    proof with both commitments negated (order-2q elements in the safe-prime
    group) would satisfy the combined product -- the two (-1) components
    cancel for any odd randomizer -- even though the per-share verifier
    rejects it.  With every element confined to the order-q subgroup the
    standard small-exponent batching bound applies.  A per-share-valid proof
    can only trip these checks if ``base_h`` itself is outside the subgroup
    (adversarially crafted ciphertext ephemeral); the batch then fails and
    the caller's per-share fallback still yields the exact seed result.
    """
    if not statements:
        return True
    q = group.q
    elements: list[int] = []
    for proof, value_g, value_h in statements:
        elements.extend((value_g, value_h, proof.commitment_g,
                         proof.commitment_h))
    if not _batch_members_ok(group, elements):
        return False
    transcripts: list[bytes] = [context, group.element_to_bytes(base_h)]
    challenges = []
    for proof, value_g, value_h in statements:
        challenge = _challenge(group, context, base_h, value_g, value_h,
                               proof.commitment_g, proof.commitment_h)
        challenges.append(challenge)
        transcripts.extend((
            group.element_to_bytes(value_g),
            group.element_to_bytes(value_h),
            group.element_to_bytes(proof.commitment_g),
            group.element_to_bytes(proof.commitment_h),
            group.scalar_to_bytes(proof.response),
        ))
    seed = batch_randomizer_seed(transcripts)
    if session is not None:
        session_key = (group.p, group.q, group.g, seed)
        cached = session.lookup(session_key)
        if cached is not None:
            return cached
        randomizers = session.randomizers(seed, 2 * len(statements))
    else:
        randomizers = expand_batch_randomizers(seed, 2 * len(statements))
    p = group.p
    native = crypto_backend.has_native_bigint()
    if native:
        # Native restructuring of the same product: every per-statement
        # term is first raised to its 64-bit randomizer weight only --
        # a_i^{r_i}, b_i^{s_i}, v_i^{r_i}, u_i^{s_i} in one batched
        # foreign call of *short*-exponent powms -- and the full-width
        # challenge is applied once per statement via
        # ``v^{r c} u^{s c} == (v^r u^s)^c``.  That swaps 2n full-width
        # exponentiations for n, which dominates the verify cost.
        response_sum_g = 0
        response_sum_h = 0
        weighted: list[tuple[int, int]] = []
        for index, (proof, value_g, value_h) in enumerate(statements):
            weight_g = randomizers[2 * index]
            weight_h = randomizers[2 * index + 1]
            response_sum_g = (response_sum_g + weight_g * proof.response) % q
            response_sum_h = (response_sum_h + weight_h * proof.response) % q
            weighted.append((proof.commitment_g, weight_g))
            weighted.append((proof.commitment_h, weight_h))
            weighted.append((value_g, weight_g))
            weighted.append((value_h, weight_h))
        powers = crypto_backend.powm_many(weighted, p)
        prefold = 1
        pairs = []
        for index, challenge in enumerate(challenges):
            a_r, b_s, v_r, u_s = powers[4 * index:4 * index + 4]
            prefold = prefold * a_r % p * b_s % p
            pairs.append((v_r * u_s % p, challenge))
        # Negated exponents fold the expected values into the product too
        # (x^-e == x^(q - e) for subgroup members), so the whole check is
        # one multi-exponentiation compared against 1.
        pairs.append((base_h, (q - response_sum_h) % q))
        pairs.append((group.g, (q - response_sum_g) % q))
        pairs.append((prefold, 1))
        verdict = crypto_backend.multi_powm(pairs, p) == 1
    else:
        pairs = []
        verify_key_product = 1
        response_sum_g = 0
        response_sum_h = 0
        for index, ((proof, value_g, value_h), challenge) in enumerate(
                zip(statements, challenges)):
            weight_g = randomizers[2 * index]
            weight_h = randomizers[2 * index + 1]
            response_sum_g = (response_sum_g + weight_g * proof.response) % q
            response_sum_h = (response_sum_h + weight_h * proof.response) % q
            pairs.append((proof.commitment_g, weight_g))
            pairs.append((proof.commitment_h, weight_h))
            # value_g is a long-lived public verify key: exponentiate it
            # through its cached fixed-base table instead of the shared
            # multi-exp.
            verify_key_product = verify_key_product * _verify_key_table(
                p, q, value_g).pow(weight_g * challenge % q) % p
            pairs.append((value_h, weight_h * challenge % q))
        # Negated exponent folded into the one product: x^-e == x^(q - e)
        # for subgroup members (g's term stays on the cheap fixed-base
        # table as the expected value).
        pairs.append((base_h, (q - response_sum_h) % q))
        verdict = multi_exp(pairs, p) * verify_key_product % p == \
            group.power_of_g(response_sum_g)
    if session is not None:
        session.record(session_key, verdict)
    return verdict


def select_shares_batched(group: Group, base_h: int, shares, context: bytes,
                          structural_ok, statement_of, verify_one,
                          session: "BatchVerifySession | None" = None) -> dict:
    """Deduplicate signer-keyed shares with batch verification.

    The shared happy/fallback skeleton of every threshold combiner
    (signatures, coins, decryption): deduplicate the structurally plausible
    shares by signer, batch-verify their proofs in one shot, and -- if the
    batch fails because any share is corrupt -- replay the seed's
    verify-as-you-deduplicate loop so the selected share set is identical
    to the unbatched implementation in every case.

    ``structural_ok`` filters candidates (type/signer-range/tag checks that
    the per-share verifier would fail cheaply), ``statement_of`` maps a
    share to its ``(proof, value_g, value_h)`` batch statement, and
    ``verify_one`` is the exact per-share verifier used on fallback.
    Returns the ``{signer: share}`` selection.
    """
    distinct: dict = {}
    for share in shares:
        if structural_ok(share):
            distinct.setdefault(share.signer, share)
    statements = [statement_of(share) for share in distinct.values()]
    if batch_verify_dlog_equality(group, base_h, statements, context=context,
                                  session=session):
        return distinct
    distinct = {}
    for share in shares:
        if verify_one(share):
            distinct.setdefault(share.signer, share)
    return distinct
