"""A Schnorr group: the prime-order subgroup of ``Z_P^*`` for a safe prime P.

The paper's cryptographic module uses pairing-friendly curves (BN158, BN254,
BLS12-381, ...) via MIRACL.  Pairings are not available offline in pure
Python at a reasonable cost, so every pairing-based construction in this
reproduction is replaced by its discrete-log analogue in this group:

* BLS threshold signatures  -> threshold "group signatures" ``H(m)^s`` with
  Chaum-Pedersen share-correctness proofs,
* the threshold common coin -> Cachin-Kursawe-Shoup DDH coin ``H(tag)^s``,
* threshold encryption      -> labelled threshold ElGamal.

These substitutions preserve exactly the properties consensus relies on
(shares combine iff at least ``t+1`` are valid, invalid shares are detected,
outputs are unpredictable to fewer than ``t+1`` parties) while staying cheap
enough for simulation.  The *cost* of the original pairing operations is
modelled separately by :mod:`repro.crypto.curves`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.field import PrimeField

# 256-bit safe prime P = 2q + 1 generated once with a fixed seed (see DESIGN.md).
_SAFE_PRIME_P = 105216956437749856470442369914846542332764088290024751311797079457000279170143
_SUBGROUP_ORDER_Q = 52608478218874928235221184957423271166382044145012375655898539728500139585071
_GENERATOR = 49  # 7^2 mod P, a generator of the order-q subgroup.


@dataclass(frozen=True)
class Group:
    """A cyclic group of prime order ``q`` written multiplicatively.

    Elements are integers in ``Z_P^*`` belonging to the order-``q`` subgroup;
    exponents live in the scalar field ``F_q``.
    """

    p: int
    q: int
    g: int

    @property
    def scalar_field(self) -> PrimeField:
        """The field of exponents ``F_q``."""
        return PrimeField(self.q)

    # ----------------------------------------------------------- group ops
    def exp(self, base: int, exponent: int) -> int:
        """Return ``base ** exponent mod P``."""
        return pow(base, exponent % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        """Return the group product ``a * b mod P``."""
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        """Return the group inverse of ``a``."""
        return pow(a, -1, self.p)

    def power_of_g(self, exponent: int) -> int:
        """Return ``g ** exponent``."""
        return self.exp(self.g, exponent)

    def is_member(self, a: int) -> bool:
        """True if ``a`` is a member of the order-``q`` subgroup."""
        if not 1 <= a < self.p:
            return False
        return pow(a, self.q, self.p) == 1

    # --------------------------------------------------------------- hashing
    def hash_to_scalar(self, *parts: bytes) -> int:
        """Hash arbitrary byte strings to an exponent in ``F_q``."""
        digest = hashlib.sha512(b"\x00".join(parts)).digest()
        return int.from_bytes(digest, "big") % self.q

    def hash_to_group(self, *parts: bytes) -> int:
        """Hash arbitrary byte strings to a group element.

        We hash to a scalar ``e`` and return ``g ** e`` -- the discrete log of
        the result is unknown to nobody in this simulation-oriented setting,
        which is acceptable because unforgeability against computationally
        bounded adversaries is not what the consensus experiments exercise.
        """
        exponent = self.hash_to_scalar(b"h2g", *parts)
        # Avoid the identity element, which would break share verification.
        return self.exp(self.g, exponent if exponent != 0 else 1)

    def random_scalar(self, rng) -> int:
        """Uniformly random non-zero exponent."""
        value = rng.randrange(1, self.q)
        return value

    def element_to_bytes(self, a: int) -> bytes:
        """Canonical byte encoding of a group element (32 bytes + sign pad)."""
        return a.to_bytes((self.p.bit_length() + 7) // 8, "big")

    def scalar_to_bytes(self, s: int) -> bytes:
        """Canonical byte encoding of a scalar."""
        return (s % self.q).to_bytes((self.q.bit_length() + 7) // 8, "big")


DEFAULT_GROUP = Group(p=_SAFE_PRIME_P, q=_SUBGROUP_ORDER_Q, g=_GENERATOR)


@dataclass(frozen=True)
class ChaumPedersenProof:
    """NIZK proof that ``log_g(v) == log_h(u)`` (discrete-log equality).

    Used to prove that a threshold signature / coin / decryption share was
    computed with the prover's correct key share, without revealing it.
    """

    commitment_g: int
    commitment_h: int
    response: int

    def size_bytes(self) -> int:
        """Wire size of the proof (two group elements + one scalar)."""
        return 3 * 32


def prove_dlog_equality(group: Group, secret: int, base_h: int,
                        value_g: int, value_h: int, rng,
                        context: bytes = b"") -> ChaumPedersenProof:
    """Produce a Chaum-Pedersen proof for ``value_g = g^secret``, ``value_h = base_h^secret``."""
    nonce = group.random_scalar(rng)
    commitment_g = group.power_of_g(nonce)
    commitment_h = group.exp(base_h, nonce)
    challenge = group.hash_to_scalar(
        b"chaum-pedersen", context,
        group.element_to_bytes(base_h),
        group.element_to_bytes(value_g),
        group.element_to_bytes(value_h),
        group.element_to_bytes(commitment_g),
        group.element_to_bytes(commitment_h),
    )
    response = (nonce + challenge * secret) % group.q
    return ChaumPedersenProof(commitment_g=commitment_g,
                              commitment_h=commitment_h,
                              response=response)


def verify_dlog_equality(group: Group, proof: ChaumPedersenProof, base_h: int,
                         value_g: int, value_h: int,
                         context: bytes = b"") -> bool:
    """Verify a Chaum-Pedersen discrete-log-equality proof."""
    if not (group.is_member(value_g) and group.is_member(value_h)):
        return False
    challenge = group.hash_to_scalar(
        b"chaum-pedersen", context,
        group.element_to_bytes(base_h),
        group.element_to_bytes(value_g),
        group.element_to_bytes(value_h),
        group.element_to_bytes(proof.commitment_g),
        group.element_to_bytes(proof.commitment_h),
    )
    lhs_g = group.power_of_g(proof.response)
    rhs_g = group.mul(proof.commitment_g, group.exp(value_g, challenge))
    if lhs_g != rhs_g:
        return False
    lhs_h = group.exp(base_h, proof.response)
    rhs_h = group.mul(proof.commitment_h, group.exp(value_h, challenge))
    return lhs_h == rhs_h
