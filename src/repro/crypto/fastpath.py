"""Shared fast-path primitives for the pure-Python crypto layer.

Every experiment funnels its cryptography through a handful of modular
exponentiations over a 256-bit safe-prime group, so this module collects the
classic software optimisations that real BFT implementations (HoneyBadgerBFT,
BEAT) rely on, implemented so that the *outputs* are bit-identical to the
naive code they replace:

* :class:`FixedBaseTable` -- fixed-base windowed precomputation: one table of
  ``base^(j * 2^(w*i))`` built per (base, modulus) turns a 256-bit
  exponentiation into ~32 table lookups and modular multiplications, which in
  CPython beats ``pow(base, e, p)`` by roughly 6x.
* :func:`jacobi` -- a binary Jacobi symbol.  For a safe prime ``P = 2q + 1``
  the order-``q`` subgroup is exactly the set of quadratic residues, so
  subgroup membership reduces to ``jacobi(a, P) == 1`` -- ~5x cheaper than
  the defining test ``a^q == 1 mod P`` and exactly equivalent.
* :func:`multi_exp` -- interleaved windowed multi-exponentiation
  ``prod base_i^{e_i} mod p`` sharing one squaring chain across all terms.
* :func:`batch_verify_dlog_equality` -- small-exponent random-linear-
  combination batching (Bellare-Garay-Rabin style) of Chaum-Pedersen
  discrete-log-equality proofs that all share the same secondary base, so a
  combiner checks ``t+1`` shares with two fixed-base exponentiations and one
  multi-exponentiation instead of ``4(t+1)`` full ``pow()`` calls.

The randomizers for batching are derived deterministically from the proof
transcripts (Fiat-Shamir style), which keeps every simulation run
reproducible: the same shares always batch-verify through the identical
sequence of group operations.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

# Soundness parameter for small-exponent batch verification: a batch that
# contains an invalid proof passes with probability at most 2^-_RANDOMIZER_BITS.
_RANDOMIZER_BITS = 64


# --------------------------------------------------------------------- tables
class FixedBaseTable:
    """Fixed-base windowed exponentiation table for one ``(base, modulus)``.

    With window width ``w`` the exponent is split into ``ceil(bits / w)``
    digits; row ``i`` stores ``base^(j * 2^(w*i))`` for every digit value
    ``j``.  An exponentiation is then one multiplication per non-zero digit.
    The default ``w = 8`` costs ~``32 * 255`` multiplications to build for a
    256-bit order (a few milliseconds, amortised over every later call) and
    ~32 multiplications per exponentiation.
    """

    __slots__ = ("base", "modulus", "order", "window", "_mask", "_rows")

    def __init__(self, base: int, modulus: int, order: int,
                 window: int = 8) -> None:
        if window < 1:
            raise ValueError(f"window width must be >= 1, got {window}")
        self.base = base % modulus
        self.modulus = modulus
        self.order = order
        self.window = window
        self._mask = (1 << window) - 1
        num_windows = (max(order.bit_length(), 1) + window - 1) // window
        rows = []
        row_base = self.base
        for _ in range(num_windows):
            row = [1] * (1 << window)
            acc = 1
            for digit in range(1, 1 << window):
                acc = (acc * row_base) % modulus
                row[digit] = acc
            rows.append(row)
            # acc == row_base^(2^w - 1), so one more multiply advances the row.
            row_base = acc * row_base % modulus
        self._rows = rows

    def pow(self, exponent: int) -> int:
        """Return ``base ** exponent mod modulus`` (exponent reduced mod order)."""
        exponent %= self.order
        acc = 1
        mask = self._mask
        window = self.window
        modulus = self.modulus
        for row in self._rows:
            digit = exponent & mask
            if digit:
                acc = acc * row[digit] % modulus
            exponent >>= window
            if not exponent:
                break
        return acc


# ------------------------------------------------------------------ membership
def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a | n)`` for odd ``n > 0`` (binary algorithm).

    Trailing zeros are stripped in bulk (``a & -a`` isolates the lowest set
    bit) rather than one shift per loop iteration, which roughly halves the
    Python-level iteration count on 256-bit inputs.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a:
        twos = (a & -a).bit_length() - 1
        if twos:
            a >>= twos
            if twos & 1 and n & 7 in (3, 5):
                result = -result
        if a & 3 == 3 and n & 3 == 3:
            result = -result
        a, n = n % a, a
    return result if n == 1 else 0


# -------------------------------------------------------------------- multi-exp
def multi_exp(pairs: Sequence[tuple[int, int]], modulus: int,
              window: int = 4) -> int:
    """Compute ``prod base^exponent mod modulus`` with shared squarings.

    ``pairs`` is a sequence of ``(base, exponent)`` with non-negative
    exponents.  The interleaved windowed method performs one squaring chain
    over the longest exponent and one table multiplication per non-zero
    digit of each exponent, which beats independent ``pow()`` calls once the
    product has a handful of terms.
    """
    if not pairs:
        return 1 % modulus
    mask = (1 << window) - 1
    # factors_at[p] collects the table entries to multiply in at digit
    # position p, so the main loop touches only non-zero digits instead of
    # probing every (term, position) pair.
    factors_at: list[list[int]] = []
    for base, exponent in pairs:
        if exponent < 0:
            raise ValueError("multi_exp requires non-negative exponents")
        base %= modulus
        # Per-term table of base^0 .. base^(2^w - 1).
        table = [1] * (1 << window)
        acc = 1
        for digit in range(1, 1 << window):
            acc = (acc * base) % modulus
            table[digit] = acc
        position = 0
        while exponent:
            digit = exponent & mask
            if digit:
                while len(factors_at) <= position:
                    factors_at.append([])
                factors_at[position].append(table[digit])
            exponent >>= window
            position += 1
    result = 1
    for factors in reversed(factors_at):
        if result != 1:
            for _ in range(window):
                result = result * result % modulus
        for factor in factors:
            result = result * factor % modulus
    return result


# ------------------------------------------------------------- batch verification
def batch_randomizer_seed(seed_parts: Sequence[bytes]) -> bytes:
    """The Fiat-Shamir seed digest over a batch's proof transcripts.

    Exposed separately from :func:`expand_batch_randomizers` so that a
    :class:`repro.crypto.group.BatchVerifySession` can use the digest both
    as its memo key and as the randomizer seed without hashing twice.
    """
    return hashlib.sha512(b"\x00".join(seed_parts)).digest()


def expand_batch_randomizers(seed: bytes, count: int,
                             bits: int = _RANDOMIZER_BITS) -> list[int]:
    """Expand a seed digest into ``count`` non-zero batching randomizers."""
    randomizers: list[int] = []
    counter = 0
    while len(randomizers) < count:
        digest = hashlib.sha512(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
        for offset in range(0, len(digest) - bits // 8 + 1, bits // 8):
            value = int.from_bytes(digest[offset:offset + bits // 8], "big")
            randomizers.append(value | 1)  # force non-zero (and odd)
            if len(randomizers) == count:
                break
    return randomizers


def derive_batch_randomizers(seed_parts: Sequence[bytes], count: int,
                             bits: int = _RANDOMIZER_BITS) -> list[int]:
    """Deterministic non-zero randomizers for small-exponent batching.

    Derived Fiat-Shamir style from the proof transcripts so batch
    verification stays reproducible run-to-run (no ambient RNG draws).
    Equivalent to expanding :func:`batch_randomizer_seed` bit-for-bit.
    """
    return expand_batch_randomizers(batch_randomizer_seed(seed_parts),
                                    count, bits)
