"""gmpy2-backed big-integer tier (the preferred native tier when installed).

gmpy2 wraps libgmp with near-zero per-call overhead, so when the optional
``repro[native]`` extra is installed this tier beats both ctypes-based GMP
tiers.  It is probed first and skipped silently when the import fails.
"""

from __future__ import annotations

from typing import Optional, Sequence


class Gmpy2Bigint:
    """Big-integer primitives via :mod:`gmpy2`."""

    name = "gmpy2"

    def __init__(self, gmpy2) -> None:
        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz
        self._powmod = gmpy2.powmod
        self._jacobi = gmpy2.jacobi

    def powm(self, base: int, exponent: int, modulus: int) -> int:
        if exponent < 0:
            raise ValueError("powm requires a non-negative exponent")
        if modulus <= 0:
            return pow(base, exponent, modulus)
        return int(self._powmod(self._mpz(base), exponent, modulus))

    def multi_powm(self, pairs: Sequence[tuple[int, int]],
                   modulus: int) -> int:
        if modulus <= 0:
            raise ValueError("multi_powm requires a positive modulus")
        if not pairs:
            return 1 % modulus
        mpz = self._mpz
        powmod = self._powmod
        mod = mpz(modulus)
        acc = mpz(1) % mod
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("multi_exp requires non-negative exponents")
            acc = acc * powmod(mpz(base), exponent, mod) % mod
        return int(acc)

    def powm_many(self, pairs: Sequence[tuple[int, int]],
                  modulus: int) -> list[int]:
        if modulus <= 0:
            raise ValueError("powm_many requires a positive modulus")
        mpz = self._mpz
        powmod = self._powmod
        mod = mpz(modulus)
        results = []
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("powm_many requires non-negative exponents")
            results.append(int(powmod(mpz(base), exponent, mod)))
        return results

    def jacobi(self, a: int, n: int) -> int:
        if n <= 0 or n % 2 == 0:
            raise ValueError("jacobi symbol requires odd positive n")
        return int(self._jacobi(self._mpz(a), self._mpz(n)))

    def jacobi_many(self, values: Sequence[int], n: int) -> list[int]:
        return [self.jacobi(value, n) for value in values]


def load_gmpy2_bigint() -> Optional[Gmpy2Bigint]:
    """The gmpy2 tier when importable, else ``None``."""
    try:
        import gmpy2
    except ImportError:
        return None
    try:
        tier = Gmpy2Bigint(gmpy2)
        if tier.powm(7, 5, 11) != pow(7, 5, 11):
            return None
    except (AttributeError, TypeError, ValueError):
        return None
    return tier
