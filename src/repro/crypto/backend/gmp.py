"""Native big-integer tiers backed by the system libgmp.

Two tiers, probed in order by :func:`load_gmp_bigint`:

* ``gmp-shim`` -- a small C helper (``_gmp_shim.c``, shipped as package
  data) compiled on demand with the system C compiler and loaded via
  ctypes.  One foreign call performs a whole batched operation (an entire
  multi-exponentiation or an array of Jacobi symbols), so the Python-side
  marshalling cost is one fixed-width ``int.to_bytes`` per operand.
* ``gmp-abi`` -- direct ``__gmpz_*`` calls into ``libgmp.so.10`` via
  ctypes, no compiler needed.  One foreign call per term; slower than the
  shim but still several times faster than pure-Python exponentiation.

Both tiers validate arguments exactly like
:mod:`repro.crypto.backend.pure` and return bit-identical results: GMP's
``mpz_powm``/``mpz_jacobi`` agree with CPython's ``pow`` and the binary
Jacobi algorithm on every input the wrappers admit.

The compiled shim lives in a content-addressed directory under the system
temp dir (keyed by the source hash), so rebuilds only happen when the C
source changes and concurrent processes race benignly via ``os.replace``.
Every failure path (no compiler, no libgmp, compile error) returns ``None``
and the caller falls back to the next tier -- native acceleration is always
optional.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional, Sequence

_SHIM_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "_gmp_shim.c")
_SHIM_LIBNAME = "librepro_gmp.so"
_GMP_CANDIDATES = ("libgmp.so.10", "libgmp.so", "gmp")


def _nbytes(value: int) -> int:
    return (value.bit_length() + 7) // 8 or 1


def _pack(values: Sequence[int], size: int) -> bytes:
    return b"".join([value.to_bytes(size, "big") for value in values])


class _ShimBigint:
    """Batched GMP operations through the compiled ``_gmp_shim.c``."""

    name = "gmp-shim"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        buffer_t = ctypes.c_char_p
        lib.repro_powm_array.argtypes = [ctypes.c_int, ctypes.c_int, buffer_t,
                                         buffer_t, buffer_t, ctypes.c_char_p]
        lib.repro_powm_array.restype = None
        lib.repro_multi_powm.argtypes = [ctypes.c_int, ctypes.c_int, buffer_t,
                                         buffer_t, buffer_t, ctypes.c_char_p]
        lib.repro_multi_powm.restype = None
        lib.repro_jacobi_array.argtypes = [ctypes.c_int, ctypes.c_int,
                                           buffer_t, ctypes.c_char_p]
        lib.repro_jacobi_array.restype = None

    def powm(self, base: int, exponent: int, modulus: int) -> int:
        if exponent < 0:
            raise ValueError("powm requires a non-negative exponent")
        if modulus <= 0:
            # Defer the error/semantics for degenerate moduli to CPython.
            return pow(base, exponent, modulus)
        base %= modulus
        size = max(_nbytes(modulus), _nbytes(base), _nbytes(exponent))
        out = ctypes.create_string_buffer(size)
        self._lib.repro_powm_array(
            1, size, base.to_bytes(size, "big"),
            exponent.to_bytes(size, "big"), modulus.to_bytes(size, "big"),
            out)
        return int.from_bytes(out.raw, "big")

    def multi_powm(self, pairs: Sequence[tuple[int, int]],
                   modulus: int) -> int:
        if modulus <= 0:
            raise ValueError("multi_powm requires a positive modulus")
        if not pairs:
            return 1 % modulus
        bases = []
        exponents = []
        bits = 0
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("multi_exp requires non-negative exponents")
            bases.append(base % modulus)
            exponents.append(exponent)
            exponent_bits = exponent.bit_length()
            if exponent_bits > bits:
                bits = exponent_bits
        size = max(_nbytes(modulus), (bits + 7) // 8)
        out = ctypes.create_string_buffer(size)
        self._lib.repro_multi_powm(
            len(pairs), size, _pack(bases, size), _pack(exponents, size),
            modulus.to_bytes(size, "big"), out)
        return int.from_bytes(out.raw, "big")

    def powm_many(self, pairs: Sequence[tuple[int, int]],
                  modulus: int) -> list[int]:
        if modulus <= 0:
            raise ValueError("powm_many requires a positive modulus")
        if not pairs:
            return []
        bases = []
        exponents = []
        bits = 0
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("powm_many requires non-negative exponents")
            bases.append(base % modulus)
            exponents.append(exponent)
            exponent_bits = exponent.bit_length()
            if exponent_bits > bits:
                bits = exponent_bits
        size = max(_nbytes(modulus), (bits + 7) // 8)
        out = ctypes.create_string_buffer(len(pairs) * size)
        self._lib.repro_powm_array(
            len(pairs), size, _pack(bases, size), _pack(exponents, size),
            modulus.to_bytes(size, "big"), out)
        raw = out.raw
        return [int.from_bytes(raw[i * size:(i + 1) * size], "big")
                for i in range(len(pairs))]

    def jacobi(self, a: int, n: int) -> int:
        return self.jacobi_many((a,), n)[0]

    def jacobi_many(self, values: Sequence[int], n: int) -> list[int]:
        if n <= 0 or n % 2 == 0:
            raise ValueError("jacobi symbol requires odd positive n")
        reduced = [value % n for value in values]
        size = _nbytes(n)
        out = ctypes.create_string_buffer(len(reduced))
        self._lib.repro_jacobi_array(
            len(reduced), size, _pack(reduced, size),
            n.to_bytes(size, "big"), out)
        return [value - 256 if value > 127 else value for value in out.raw]


class _Mpz(ctypes.Structure):
    _fields_ = [("_mp_alloc", ctypes.c_int), ("_mp_size", ctypes.c_int),
                ("_mp_d", ctypes.c_void_p)]


class _AbiBigint:
    """Direct ``__gmpz_*`` calls into libgmp (no compiler required).

    The scratch mpz variables are reused across calls, which is safe in this
    single-threaded simulator and avoids per-call allocator churn.
    """

    name = "gmp-abi"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        mpz_p = ctypes.POINTER(_Mpz)
        lib.__gmpz_init.argtypes = [mpz_p]
        lib.__gmpz_import.argtypes = [mpz_p, ctypes.c_size_t, ctypes.c_int,
                                      ctypes.c_size_t, ctypes.c_int,
                                      ctypes.c_size_t, ctypes.c_char_p]
        lib.__gmpz_export.argtypes = [ctypes.c_char_p,
                                      ctypes.POINTER(ctypes.c_size_t),
                                      ctypes.c_int, ctypes.c_size_t,
                                      ctypes.c_int, ctypes.c_size_t, mpz_p]
        lib.__gmpz_export.restype = ctypes.c_void_p
        lib.__gmpz_powm.argtypes = [mpz_p] * 4
        lib.__gmpz_jacobi.argtypes = [mpz_p, mpz_p]
        lib.__gmpz_jacobi.restype = ctypes.c_int
        lib.__gmpz_mul.argtypes = [mpz_p] * 3
        lib.__gmpz_tdiv_r.argtypes = [mpz_p] * 3
        self._scratch = [self._new() for _ in range(6)]

    def _new(self) -> _Mpz:
        z = _Mpz()
        self._lib.__gmpz_init(ctypes.byref(z))
        return z

    def _set(self, z: _Mpz, value: int) -> None:
        raw = value.to_bytes(_nbytes(value), "big")
        self._lib.__gmpz_import(ctypes.byref(z), len(raw), 1, 1, 1, 0, raw)

    def _get(self, z: _Mpz, size: int) -> int:
        buffer = ctypes.create_string_buffer(size)
        count = ctypes.c_size_t(0)
        self._lib.__gmpz_export(buffer, ctypes.byref(count), 1, 1, 1, 0,
                                ctypes.byref(z))
        return int.from_bytes(buffer.raw[:count.value], "big")

    def powm(self, base: int, exponent: int, modulus: int) -> int:
        if exponent < 0:
            raise ValueError("powm requires a non-negative exponent")
        if modulus <= 0:
            return pow(base, exponent, modulus)
        base %= modulus
        mod_z, base_z, exp_z, out_z = self._scratch[:4]
        self._set(mod_z, modulus)
        self._set(base_z, base)
        self._set(exp_z, exponent)
        self._lib.__gmpz_powm(ctypes.byref(out_z), ctypes.byref(base_z),
                              ctypes.byref(exp_z), ctypes.byref(mod_z))
        return self._get(out_z, _nbytes(modulus))

    def multi_powm(self, pairs: Sequence[tuple[int, int]],
                   modulus: int) -> int:
        if modulus <= 0:
            raise ValueError("multi_powm requires a positive modulus")
        if not pairs:
            return 1 % modulus
        mod_z, base_z, exp_z, term_z, acc_z = self._scratch[:5]
        self._set(mod_z, modulus)
        self._set(acc_z, 1 % modulus)
        byref = ctypes.byref
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("multi_exp requires non-negative exponents")
            self._set(base_z, base % modulus)
            self._set(exp_z, exponent)
            self._lib.__gmpz_powm(byref(term_z), byref(base_z), byref(exp_z),
                                  byref(mod_z))
            self._lib.__gmpz_mul(byref(acc_z), byref(acc_z), byref(term_z))
            self._lib.__gmpz_tdiv_r(byref(acc_z), byref(acc_z), byref(mod_z))
        return self._get(acc_z, _nbytes(modulus))

    def powm_many(self, pairs: Sequence[tuple[int, int]],
                  modulus: int) -> list[int]:
        if modulus <= 0:
            raise ValueError("powm_many requires a positive modulus")
        mod_z, base_z, exp_z, out_z = self._scratch[:4]
        self._set(mod_z, modulus)
        byref = ctypes.byref
        size = _nbytes(modulus)
        results = []
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("powm_many requires non-negative exponents")
            self._set(base_z, base % modulus)
            self._set(exp_z, exponent)
            self._lib.__gmpz_powm(byref(out_z), byref(base_z), byref(exp_z),
                                  byref(mod_z))
            results.append(self._get(out_z, size))
        return results

    def jacobi(self, a: int, n: int) -> int:
        if n <= 0 or n % 2 == 0:
            raise ValueError("jacobi symbol requires odd positive n")
        mod_z, value_z = self._scratch[:2]
        self._set(mod_z, n)
        self._set(value_z, a % n)
        return self._lib.__gmpz_jacobi(ctypes.byref(value_z),
                                       ctypes.byref(mod_z))

    def jacobi_many(self, values: Sequence[int], n: int) -> list[int]:
        return [self.jacobi(value, n) for value in values]


def _shim_library_path() -> Optional[str]:
    """Compile (once, content-addressed) and return the shim path, or None."""
    try:
        with open(_SHIM_SOURCE, "rb") as handle:
            source_blob = handle.read()
    except OSError:
        return None
    digest = hashlib.sha256(source_blob).hexdigest()[:16]
    libdir = os.path.join(tempfile.gettempdir(), f"repro-gmp-{digest}")
    libpath = os.path.join(libdir, _SHIM_LIBNAME)
    if os.path.exists(libpath):
        return libpath
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    try:
        os.makedirs(libdir, exist_ok=True)
        staging = os.path.join(libdir, f".{_SHIM_LIBNAME}.{os.getpid()}")
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", staging,
             _SHIM_SOURCE, "-lgmp"],
            capture_output=True, timeout=120)
        if result.returncode != 0 or not os.path.exists(staging):
            return None
        os.replace(staging, libpath)
    except (OSError, subprocess.SubprocessError):
        return None
    return libpath


def _load_gmp_library() -> Optional[ctypes.CDLL]:
    candidates = list(_GMP_CANDIDATES)
    found = ctypes.util.find_library("gmp")
    if found:
        candidates.insert(0, found)
    for candidate in candidates:
        try:
            return ctypes.CDLL(candidate)
        except OSError:
            continue
    return None


def load_gmp_bigint():
    """Best available libgmp tier (shim, then ABI), or ``None``."""
    libpath = _shim_library_path()
    if libpath is not None:
        try:
            shim = _ShimBigint(ctypes.CDLL(libpath))
            # One self-check call: a broken toolchain should demote the
            # tier at probe time, not corrupt crypto results later.
            if shim.powm(7, 5, 11) == pow(7, 5, 11):
                return shim
        except (OSError, AttributeError):
            pass
    lib = _load_gmp_library()
    if lib is not None:
        try:
            abi = _AbiBigint(lib)
            if abi.powm(7, 5, 11) == pow(7, 5, 11):
                return abi
        except (OSError, AttributeError):
            pass
    return None
