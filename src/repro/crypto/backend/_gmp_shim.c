/* Minimal libgmp shim for the native crypto backend.
 *
 * Compiled on demand by repro.crypto.backend.gmp (gcc -O2 -shared -fPIC
 * -lgmp); never required -- the pure-Python fastpath is always available.
 *
 * All values cross the boundary as fixed-width big-endian byte strings of
 * `size` bytes (the modulus width), which keeps the Python-side marshalling
 * to a single int.to_bytes / int.from_bytes per operand.
 */
#include <gmp.h>
#include <stddef.h>

static void export_fixed(unsigned char *dst, int size, const mpz_t value) {
    size_t count = 0;
    size_t bytes = (mpz_sizeinbase(value, 2) + 7) / 8;
    if (mpz_sgn(value) == 0) bytes = 0;
    for (int j = 0; j < size; j++) dst[j] = 0;
    /* right-align the export inside the fixed-width slot */
    mpz_export(dst + (size - bytes), &count, 1, 1, 1, 0, value);
}

/* out[i] = bases[i] ^ exps[i] mod mod */
void repro_powm_array(int n, int size, const unsigned char *bases,
                      const unsigned char *exps, const unsigned char *mod,
                      unsigned char *out) {
    mpz_t m, b, e, r;
    mpz_inits(m, b, e, r, NULL);
    mpz_import(m, size, 1, 1, 1, 0, mod);
    for (int i = 0; i < n; i++) {
        mpz_import(b, size, 1, 1, 1, 0, bases + (size_t)i * size);
        mpz_import(e, size, 1, 1, 1, 0, exps + (size_t)i * size);
        mpz_powm(r, b, e, m);
        export_fixed(out + (size_t)i * size, size, r);
    }
    mpz_clears(m, b, e, r, NULL);
}

/* out = prod bases[i] ^ exps[i] mod mod
 *
 * A per-term mpz_powm loop deliberately: a Straus/interleaved multi-exp
 * shares one squaring chain across terms, but GMP's public API exposes no
 * Montgomery arithmetic, so each shared-chain step pays a full division
 * (mpz_mod) where mpz_powm pays a REDC step internally.  Measured on the
 * batch-verify workload (12 64-bit randomizer exponents + 8 full-width
 * terms) the windowed variant broke even at best; the loop also keeps
 * 64-bit exponents on mpz_powm's cheap path.
 */
void repro_multi_powm(int n, int size, const unsigned char *bases,
                      const unsigned char *exps, const unsigned char *mod,
                      unsigned char *out) {
    mpz_t m, b, e, r, acc;
    mpz_inits(m, b, e, r, acc, NULL);
    mpz_import(m, size, 1, 1, 1, 0, mod);
    mpz_set_ui(acc, 1);
    mpz_mod(acc, acc, m);
    for (int i = 0; i < n; i++) {
        mpz_import(b, size, 1, 1, 1, 0, bases + (size_t)i * size);
        mpz_import(e, size, 1, 1, 1, 0, exps + (size_t)i * size);
        mpz_powm(r, b, e, m);
        mpz_mul(acc, acc, r);
        mpz_mod(acc, acc, m);
    }
    export_fixed(out, size, acc);
    mpz_clears(m, b, e, r, acc, NULL);
}

/* out[i] = jacobi(values[i] | mod); mod must be odd and positive */
void repro_jacobi_array(int n, int size, const unsigned char *values,
                        const unsigned char *mod, signed char *out) {
    mpz_t m, v;
    mpz_inits(m, v, NULL);
    mpz_import(m, size, 1, 1, 1, 0, mod);
    for (int i = 0; i < n; i++) {
        mpz_import(v, size, 1, 1, 1, 0, values + (size_t)i * size);
        out[i] = (signed char)mpz_jacobi(v, m);
    }
    mpz_clears(m, v, NULL);
}
