"""The always-available pure-Python big-integer tier.

Delegates straight to the CPython builtins and the hand-optimised helpers in
:mod:`repro.crypto.fastpath`; this tier defines the reference semantics that
every native tier must reproduce bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto import fastpath


class PureBigint:
    """Big-integer primitives via CPython ``pow`` and the fastpath helpers."""

    name = "pure"

    @staticmethod
    def powm(base: int, exponent: int, modulus: int) -> int:
        if exponent < 0:
            raise ValueError("powm requires a non-negative exponent")
        return pow(base, exponent, modulus)

    @staticmethod
    def multi_powm(pairs: Sequence[tuple[int, int]], modulus: int) -> int:
        return fastpath.multi_exp(pairs, modulus)

    @staticmethod
    def powm_many(pairs: Sequence[tuple[int, int]],
                  modulus: int) -> list[int]:
        if modulus <= 0:
            raise ValueError("powm_many requires a positive modulus")
        results = []
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("powm_many requires non-negative exponents")
            results.append(pow(base, exponent, modulus))
        return results

    @staticmethod
    def jacobi(a: int, n: int) -> int:
        return fastpath.jacobi(a, n)

    @staticmethod
    def jacobi_many(values: Sequence[int], n: int) -> list[int]:
        return [fastpath.jacobi(value, n) for value in values]
