"""numpy-backed exact modular matrix products for the erasure hot path.

Reed-Solomon encode/decode in :mod:`repro.components.erasure` is a modular
matrix product over ``F_p`` with ``p = 2^31 - 1``.  int64 matmul overflows
for 31-bit entries, so the right operand is split into 16-bit limbs::

    a @ b  ==  ((a @ hi) % p << 16) + a @ lo   (mod p)

which is exact in int64 as long as the inner dimension stays below 2^15
(enforced by :meth:`NumpyMatrix.matmul_mod`; callers fall back to the pure
path beyond it).  Results are canonical ``[0, p)`` representatives, so the
decoded bytes are bit-identical to the pure implementation.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: inner-dimension bound that keeps the limb-split accumulation inside int64
MAX_INNER_DIM = 1 << 15
#: modulus bound that keeps entries at 31 bits
MAX_MODULUS = 1 << 31


class NumpyMatrix:
    """Exact modular matrix products on int64 numpy arrays."""

    name = "numpy"

    def __init__(self, np) -> None:
        self._np = np

    def matrix(self, rows: Sequence[Sequence[int]]):
        """An int64 array from rows of Python ints in ``[0, 2^31)``."""
        return self._np.array(rows, dtype=self._np.int64)

    def matmul_mod(self, a, b, modulus: int):
        """``(a @ b) % modulus`` computed exactly in int64."""
        if not 1 < modulus <= MAX_MODULUS:
            raise ValueError(
                f"matmul_mod supports moduli in (1, 2^31], got {modulus}")
        inner = a.shape[-1]
        if inner > MAX_INNER_DIM:
            raise ValueError(
                f"matmul_mod inner dimension {inner} exceeds {MAX_INNER_DIM}")
        np = self._np
        hi, lo = np.divmod(b, 1 << 16)
        acc = ((a @ hi % modulus) << 16) + a @ lo
        return acc % modulus


def load_numpy_matrix() -> Optional[NumpyMatrix]:
    """The numpy matrix engine when importable, else ``None``."""
    try:
        import numpy
    except ImportError:
        return None
    engine = NumpyMatrix(numpy)
    try:
        check = engine.matmul_mod(engine.matrix([[3, 5]]),
                                  engine.matrix([[7], [11]]), 2**31 - 1)
        if int(check[0][0]) != (3 * 7 + 5 * 11) % (2**31 - 1):
            return None
    except Exception:  # pragma: no cover - defensive probe
        return None
    return engine
