"""Pluggable acceleration backend for the crypto/erasure hot paths.

The reproduction's floor is pure-Python big-integer arithmetic: threshold
share combination and Reed-Solomon decode dominate every consensus
experiment once the simulator kernel is fast.  This package selects, per
primitive, between the always-available pure fastpath and an optional
native path:

* big integers -- ``gmpy2`` when installed (``pip install .[native]``),
  otherwise the system ``libgmp`` through a small compiled shim or raw
  ctypes ABI calls (:mod:`repro.crypto.backend.gmp`);
* modular matrix products (erasure encode/decode) -- numpy int64 with
  16-bit limb splitting (:mod:`repro.crypto.backend.matrix`).

Selection is **opt-in** via ``REPRO_CRYPTO_BACKEND``:

* unset or ``pure``  -- pure Python only (the default: recorded artifacts
  never depend on what happens to be installed);
* ``auto``   -- best available tier per primitive, silently falling back
  to pure;
* ``native`` -- require a native big-integer tier, raising
  :class:`BackendUnavailableError` with the probe outcome when none loads.

Every tier is bit-identical to the pure path by construction and pinned by
the property tests in ``tests/crypto/test_backend.py``; forcing either
path through :func:`use` can never change a digest, a byte count or an RNG
stream -- only wall-clock speed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Sequence

from repro.crypto.backend.pure import PureBigint

__all__ = [
    "BackendUnavailableError",
    "activate",
    "backend_info",
    "current_mode",
    "has_native_bigint",
    "jacobi",
    "jacobi_many",
    "matrix_engine",
    "multi_powm",
    "powm",
    "powm_many",
    "use",
]

_ENV_VAR = "REPRO_CRYPTO_BACKEND"
_MODES = ("pure", "auto", "native")
_UNPROBED = object()


class BackendUnavailableError(RuntimeError):
    """``native`` was forced but no native tier could be loaded."""


_PURE_BIGINT = PureBigint()

#: probe results, memoised per process (compiling the shim is not free)
_native_bigint = _UNPROBED
_native_matrix = _UNPROBED

#: active selection
_mode = "pure"
_bigint = _PURE_BIGINT
_matrix = None


def _probe_native_bigint():
    global _native_bigint
    if _native_bigint is _UNPROBED:
        from repro.crypto.backend.gmp import load_gmp_bigint
        from repro.crypto.backend.gmpy2_backend import load_gmpy2_bigint
        _native_bigint = load_gmpy2_bigint() or load_gmp_bigint()
    return _native_bigint


def _probe_native_matrix():
    global _native_matrix
    if _native_matrix is _UNPROBED:
        from repro.crypto.backend.matrix import load_numpy_matrix
        _native_matrix = load_numpy_matrix()
    return _native_matrix


def resolve_mode(env_value: Optional[str]) -> str:
    """Map the ``REPRO_CRYPTO_BACKEND`` value to a mode (unset -> pure)."""
    if env_value is None or env_value == "":
        return "pure"
    value = env_value.strip().lower()
    if value not in _MODES:
        raise BackendUnavailableError(
            f"{_ENV_VAR}={env_value!r} is not a valid backend mode; "
            f"expected one of {', '.join(_MODES)}")
    return value


def activate(mode: str) -> None:
    """Select the backend tiers for ``mode`` (process-wide)."""
    global _mode, _bigint, _matrix
    mode = resolve_mode(mode)
    if mode == "pure":
        _mode, _bigint, _matrix = "pure", _PURE_BIGINT, None
        return
    native = _probe_native_bigint()
    matrix = _probe_native_matrix()
    if mode == "native" and native is None:
        raise BackendUnavailableError(
            "REPRO_CRYPTO_BACKEND=native but no native big-integer tier "
            "loaded: gmpy2 is not installed and the libgmp tiers failed to "
            "probe (need the gmp shared library, plus a C compiler for the "
            "shim tier). Install the 'native' extra (pip install .[native]) "
            "or unset the variable to run pure Python.")
    _mode = mode
    _bigint = native if native is not None else _PURE_BIGINT
    _matrix = matrix
    return


@contextmanager
def use(mode: str):
    """Temporarily force a backend mode (tests, benchmarks)."""
    saved = (_mode, _bigint, _matrix)
    try:
        activate(mode)
        yield backend_info()
    finally:
        _restore(saved)


def _restore(saved) -> None:
    global _mode, _bigint, _matrix
    _mode, _bigint, _matrix = saved


def current_mode() -> str:
    """The active mode (``pure``, ``auto`` or ``native``)."""
    return _mode


def has_native_bigint() -> bool:
    """True when big-integer ops run on a native tier right now."""
    return _bigint is not _PURE_BIGINT


def matrix_engine():
    """The active matrix engine (numpy) or ``None`` (pure fallback)."""
    return _matrix


def backend_info() -> dict:
    """Active selection plus probe availability, for logs and benchmarks."""
    native = _probe_native_bigint()
    matrix = _probe_native_matrix()
    return {
        "mode": _mode,
        "bigint": _bigint.name,
        "matrix": _matrix.name if _matrix is not None else "pure",
        "native_bigint_available": native.name if native else None,
        "native_matrix_available": matrix.name if matrix else None,
    }


# ------------------------------------------------------------- dispatchers
def powm(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` (exponent must be non-negative)."""
    return _bigint.powm(base, exponent, modulus)


def multi_powm(pairs: Sequence[tuple[int, int]], modulus: int) -> int:
    """``prod base_i ** exponent_i mod modulus``."""
    return _bigint.multi_powm(pairs, modulus)


def powm_many(pairs: Sequence[tuple[int, int]], modulus: int) -> list[int]:
    """``[base_i ** exponent_i mod modulus, ...]`` in one batched call."""
    return _bigint.powm_many(pairs, modulus)


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a | n)`` for odd positive ``n``."""
    return _bigint.jacobi(a, n)


def jacobi_many(values: Sequence[int], n: int) -> list[int]:
    """Jacobi symbols for many values against one modulus."""
    return _bigint.jacobi_many(values, n)


# Honour the environment at import time; an invalid value fails loudly here
# rather than silently running pure.
activate(resolve_mode(os.environ.get(_ENV_VAR)))
