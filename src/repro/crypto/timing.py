"""Cost-accounted cryptography facade used by consensus components.

Consensus latency on the paper's testbed is driven as much by cryptographic
computation as by airtime, so every cryptographic operation performed inside
the simulator must (a) actually execute (so the protocols are functionally
real) and (b) charge the executing node's CPU with the per-curve latency of
Figure 10.  :class:`CryptoSuite` is the single entry point that does both:
components call its methods, the real primitive runs, and the configured
``cost_sink`` (normally the owning :class:`repro.net.node.NetworkNode`) is
charged with the modelled latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.crypto.curves import (
    CurveProfile,
    DEFAULT_EC_CURVE,
    DEFAULT_THRESHOLD_CURVE,
    ThresholdCurveProfile,
    get_ec_curve,
    get_threshold_curve,
)
from repro.crypto.digital_sig import Signature, SigningKey, VerifyKey
from repro.crypto.group import BatchVerifySession
from repro.crypto.threshold_coin import CoinShare, ThresholdCoinScheme
from repro.crypto.threshold_enc import Ciphertext, DecryptionShare, ThresholdEncScheme
from repro.crypto.threshold_sig import (
    ThresholdSigScheme,
    ThresholdSigShare,
    ThresholdSignature,
)

CostSink = Callable[[float], None]


@dataclass(frozen=True)
class CryptoCost:
    """A single accounted operation."""

    operation: str
    seconds: float


@dataclass
class CostLedger:
    """Accumulates cryptographic computation cost per operation type."""

    entries: list[CryptoCost] = field(default_factory=list)

    def record(self, operation: str, seconds: float) -> None:
        """Record one operation."""
        self.entries.append(CryptoCost(operation=operation, seconds=seconds))

    @property
    def total_seconds(self) -> float:
        """Total CPU seconds spent on cryptography."""
        return sum(entry.seconds for entry in self.entries)

    def count(self, operation: str) -> int:
        """Number of operations of a given type."""
        return sum(1 for entry in self.entries if entry.operation == operation)

    def seconds_for(self, operation: str) -> float:
        """Total seconds spent on a given operation type."""
        return sum(entry.seconds for entry in self.entries
                   if entry.operation == operation)

    def by_operation(self) -> dict[str, float]:
        """Total seconds grouped by operation type."""
        grouped: dict[str, float] = {}
        for entry in self.entries:
            grouped[entry.operation] = grouped.get(entry.operation, 0.0) + entry.seconds
        return grouped


class CryptoSuite:
    """Bundles one node's key material with the cost model.

    Parameters
    ----------
    node_id:
        The owning node (0-based).
    signing_key / verify_keys:
        The node's digital-signature keypair and everybody's verify keys.
    threshold_sig / threshold_coin / coin_flip / threshold_enc:
        The node's handles for the threshold schemes (any may be ``None`` when
        a protocol does not use it, e.g. local-coin ABA needs no coin scheme).
    ec_curve / threshold_curve:
        Curve profiles controlling byte sizes and operation latencies.
    rng:
        Randomness source for signing/encryption nonces.
    cost_sink:
        Callback charged with every operation's latency (seconds).  The node
        runtime installs a callback that extends its CPU-busy time.
    cost_scale:
        Multiplier on every charged latency.  The per-curve profiles model
        the paper's STM32F767 boards; large-n scale scenarios run on
        gateway-class hardware and scale the same relative costs down
        (``repro.testbed.scenarios.GATEWAY_CRYPTO_SCALE``).
    batch_session:
        Optional :class:`repro.crypto.group.BatchVerifySession` shared by
        every suite of a deployment (the streaming runner installs one per
        run).  Threaded into every combine's batch verification so that
        randomizer derivation and whole-batch verdicts are amortised across
        epochs and simulated nodes.  Pure memoisation: the modelled CPU
        cost is charged exactly as before -- only wall clock changes.
    """

    def __init__(self, node_id: int, signing_key: SigningKey,
                 verify_keys: Sequence[VerifyKey],
                 threshold_sig: Optional[ThresholdSigScheme] = None,
                 threshold_coin: Optional[ThresholdCoinScheme] = None,
                 coin_flip: Optional[ThresholdCoinScheme] = None,
                 threshold_enc: Optional[ThresholdEncScheme] = None,
                 ec_curve: str = DEFAULT_EC_CURVE,
                 threshold_curve: str = DEFAULT_THRESHOLD_CURVE,
                 rng=None, cost_sink: Optional[CostSink] = None,
                 cost_scale: float = 1.0,
                 batch_session: Optional[BatchVerifySession] = None) -> None:
        self.node_id = node_id
        self.signing_key = signing_key
        self.verify_keys = list(verify_keys)
        self.threshold_sig = threshold_sig
        self.threshold_coin = threshold_coin
        self.coin_flip = coin_flip
        self.threshold_enc = threshold_enc
        self.ec_profile: CurveProfile = get_ec_curve(ec_curve)
        self.threshold_profile: ThresholdCurveProfile = get_threshold_curve(threshold_curve)
        self.rng = rng
        self.cost_sink = cost_sink
        if cost_scale <= 0:
            raise ValueError(f"cost_scale must be positive, got {cost_scale}")
        self.cost_scale = cost_scale
        self.batch_session = batch_session
        self.ledger = CostLedger()

    # ------------------------------------------------------------- accounting
    def _charge(self, operation: str, milliseconds: float) -> None:
        seconds = milliseconds * self.cost_scale / 1000.0
        self.ledger.record(operation, seconds)
        if self.cost_sink is not None:
            self.cost_sink(seconds)

    # ----------------------------------------------------------------- sizes
    @property
    def digital_signature_bytes(self) -> int:
        """Wire size of one public-key digital signature."""
        return self.ec_profile.signature_bytes

    @property
    def threshold_signature_bytes(self) -> int:
        """Wire size of one combined threshold signature."""
        return self.threshold_profile.threshold_sig_bytes

    @property
    def threshold_share_bytes(self) -> int:
        """Wire size of one threshold signature/coin share."""
        return self.threshold_profile.share_bytes

    # --------------------------------------------------- digital signatures
    def sign(self, message: bytes) -> Signature:
        """Sign a packet payload with the node's digital signature key."""
        self._charge("ecdsa_sign", self.ec_profile.sign_ms)
        return self.signing_key.sign(message, self.rng)

    def verify(self, signer: int, message: bytes, signature: Signature) -> bool:
        """Verify a packet signature from ``signer``."""
        self._charge("ecdsa_verify", self.ec_profile.verify_ms)
        if not 0 <= signer < len(self.verify_keys):
            return False
        return self.verify_keys[signer].verify(message, signature)

    # --------------------------------------------------- threshold signatures
    def tsig_share(self, message: bytes) -> ThresholdSigShare:
        """Produce a threshold-signature share."""
        self._require(self.threshold_sig, "threshold signature scheme")
        self._charge("tsig_sign", self.threshold_profile.sign_share_ms)
        return self.threshold_sig.sign_share(message, self.rng)

    def tsig_verify_share(self, message: bytes, share: ThresholdSigShare) -> bool:
        """Verify a threshold-signature share."""
        self._require(self.threshold_sig, "threshold signature scheme")
        self._charge("tsig_verify_share", self.threshold_profile.verify_share_ms)
        return self.threshold_sig.verify_share(message, share)

    def tsig_combine(self, message: bytes,
                     shares: Iterable[ThresholdSigShare],
                     verify: bool = True) -> ThresholdSignature:
        """Combine shares into a threshold signature.

        ``verify=False`` skips the combiner's redundant re-verification when
        the caller has already verified every share individually (the modelled
        combine cost is charged either way).
        """
        self._require(self.threshold_sig, "threshold signature scheme")
        self._charge("tsig_combine", self.threshold_profile.combine_share_ms)
        return self.threshold_sig.combine(message, shares, verify=verify,
                                          session=self.batch_session)

    def tsig_verify(self, message: bytes, signature: ThresholdSignature) -> bool:
        """Verify a combined threshold signature."""
        self._require(self.threshold_sig, "threshold signature scheme")
        self._charge("tsig_verify", self.threshold_profile.verify_signature_ms)
        return self.threshold_sig.verify_signature(message, signature)

    # --------------------------------------------------------- common coin
    def _coin_scheme(self, flavor: str) -> ThresholdCoinScheme:
        if flavor == "flip":
            self._require(self.coin_flip, "threshold coin-flipping scheme")
            return self.coin_flip
        self._require(self.threshold_coin, "threshold coin scheme")
        return self.threshold_coin

    def coin_share(self, tag: bytes, flavor: str = "tsig") -> CoinShare:
        """Produce a coin share for the round tag."""
        scheme = self._coin_scheme(flavor)
        if flavor == "flip":
            self._charge("coinflip_sign", self.threshold_profile.coin_sign_ms)
        else:
            self._charge("tsig_sign", self.threshold_profile.sign_share_ms)
        return scheme.coin_share(tag, self.rng)

    def coin_verify_share(self, tag: bytes, share: CoinShare,
                          flavor: str = "tsig") -> bool:
        """Verify a coin share."""
        scheme = self._coin_scheme(flavor)
        if flavor == "flip":
            self._charge("coinflip_verify_share",
                         self.threshold_profile.coin_verify_share_ms)
        else:
            self._charge("tsig_verify_share", self.threshold_profile.verify_share_ms)
        return scheme.verify_share(tag, share)

    def coin_combine(self, tag: bytes, shares: Iterable[CoinShare],
                     flavor: str = "tsig", verify: bool = True) -> int:
        """Reveal the coin bit (``verify=False`` when every share was
        already verified individually on receipt)."""
        scheme = self._coin_scheme(flavor)
        if flavor == "flip":
            self._charge("coinflip_combine", self.threshold_profile.coin_combine_ms)
        else:
            self._charge("tsig_combine", self.threshold_profile.combine_share_ms)
        return scheme.combine(tag, shares, verify=verify,
                              session=self.batch_session)

    def coin_combine_value(self, tag: bytes, shares: Iterable[CoinShare],
                           modulus: int, flavor: str = "tsig",
                           verify: bool = True) -> int:
        """Reveal a wide pseudorandom value (used for Dumbo's global pi)."""
        scheme = self._coin_scheme(flavor)
        if flavor == "flip":
            self._charge("coinflip_combine", self.threshold_profile.coin_combine_ms)
        else:
            self._charge("tsig_combine", self.threshold_profile.combine_share_ms)
        return scheme.combine_value(tag, shares, modulus, verify=verify,
                                    session=self.batch_session)

    # -------------------------------------------------- threshold encryption
    def encrypt(self, plaintext: bytes, label: bytes) -> Ciphertext:
        """Threshold-encrypt a proposal."""
        self._require(self.threshold_enc, "threshold encryption scheme")
        self._charge("tenc_encrypt", self.threshold_profile.sign_share_ms)
        return self.threshold_enc.encrypt(plaintext, label, self.rng)

    def decryption_share(self, ciphertext: Ciphertext) -> DecryptionShare:
        """Produce a decryption share."""
        self._require(self.threshold_enc, "threshold encryption scheme")
        self._charge("tenc_share", self.threshold_profile.sign_share_ms)
        return self.threshold_enc.decryption_share(ciphertext, self.rng)

    def verify_decryption_share(self, ciphertext: Ciphertext,
                                share: DecryptionShare) -> bool:
        """Verify a decryption share."""
        self._require(self.threshold_enc, "threshold encryption scheme")
        self._charge("tenc_verify_share", self.threshold_profile.verify_share_ms)
        return self.threshold_enc.verify_share(ciphertext, share)

    def decrypt(self, ciphertext: Ciphertext,
                shares: Iterable[DecryptionShare],
                verify: bool = True) -> bytes:
        """Combine decryption shares and recover the plaintext."""
        self._require(self.threshold_enc, "threshold encryption scheme")
        self._charge("tenc_combine", self.threshold_profile.combine_share_ms)
        return self.threshold_enc.combine(ciphertext, shares, verify=verify,
                                          session=self.batch_session)

    # ------------------------------------------------------------------ misc
    @staticmethod
    def _require(scheme, description: str) -> None:
        if scheme is None:
            raise RuntimeError(f"this CryptoSuite was built without a {description}")
