"""Logical component messages, packets and the packet-size model.

Consensus components exchange *logical messages* (an ECHO vote for RBC
instance 3, a coin share for ABA round 2, ...).  How logical messages map to
on-air packets is the whole point of ConsensusBatcher:

* the **baseline** transport wraps every logical message in its own packet
  (its own header, NACK field and digital signature) and pays one channel
  access per message;
* the **ConsensusBatcher** transport merges many logical messages into one
  packet following the formats of Figures 4-6 and pays one channel access for
  all of them.

:class:`PacketSizer` turns a batch of logical messages into a byte size using
the field widths of the paper's packet structures, so that airtime and
fragmentation reflect what batching does to packet length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


def tag_scope_chain(tag: Any) -> list:
    """The scope roots ``tag`` belongs to: itself, then each unwrapping of
    its first element (``((root, "aba"), slot)`` -> that tag, ``(root,
    "aba")``, ``root``, ...).  Lets released-scope membership be tested in
    O(nesting depth) set lookups instead of scanning every released root.
    """
    chain = [tag]
    while isinstance(tag, tuple) and tag:
        tag = tag[0]
        chain.append(tag)
    return chain


def tag_in_scope(tag: Any, root: Any) -> bool:
    """Whether ``tag`` belongs to the protocol scope rooted at ``root``.

    Protocol epochs own a *root* tag (HoneyBadger's ``("hb", epoch)``); some
    protocols derive nested sub-tags from it by wrapping it as the first
    element of a tuple (Dumbo's ``(root, "value")`` CBC set, its per-slot coin
    tags ``(root, "aba", slot)``).  Epoch garbage collection in the streaming
    testbed must reclaim the whole scope, so scope membership recurses
    through the first element: ``tag == root`` or ``tag[0]`` is
    (transitively) in scope.
    """
    return root in tag_scope_chain(tag)


#: phases whose payload is a full proposal (potentially spanning packets)
PROPOSAL_PHASES = frozenset({"initial"})
#: phases that carry a threshold signature share (or combined signature)
SHARE_PHASES = frozenset({"done", "echo_sig", "finish", "share"})
#: phases that carry one- or two-bit votes
VOTE_PHASES = frozenset({"echo", "ready", "bval", "aux", "initial_small"})


@dataclass
class ComponentMessage:
    """One logical protocol message emitted by a consensus component.

    Attributes
    ----------
    kind:
        Component family: ``rbc``, ``rbc_small``, ``prbc``, ``cbc``,
        ``cbc_small``, ``aba_lc``, ``aba_sc``, ``aba_cp``.
    instance:
        Index of the parallel instance (0..N-1), or the ABA slot index.
    phase:
        Component phase (``initial``, ``echo``, ``ready``, ``done``, ``finish``,
        ``bval``, ``aux``, ``share``...).
    sender:
        Originating node id.
    payload:
        Phase-specific content (opaque to the transport).
    payload_bytes:
        Size contribution of the value part of this message.
    share_bytes:
        Size contribution of any threshold share / signature it carries.
    round:
        ABA round number (0 for broadcast components).
    tag:
        Optional extra discriminator (e.g. "value"/"commit" for Dumbo's two
        CBC sets, or an epoch number).
    slot:
        Optional sub-slot discriminator for phases where one node emits
        several distinct messages (e.g. the per-voter echo votes inside
        Bracha's ABA, or the per-recipient blocks of Cachin's RBC); messages
        with different slots occupy different batching slots instead of
        overwriting each other.
    """

    kind: str
    instance: int
    phase: str
    sender: int
    payload: Any
    payload_bytes: int = 0
    share_bytes: int = 0
    round: int = 0
    tag: Any = None
    slot: Any = None

    def slot_key(self) -> tuple:
        """Key identifying the batching slot this message occupies."""
        return (self.kind, self.tag, self.instance, self.phase, self.round,
                self.slot)

    def describe(self) -> str:
        """Human-readable one-liner for logs and debugging."""
        tag = f"/{self.tag}" if self.tag is not None else ""
        return (f"{self.kind}{tag}[{self.instance}].{self.phase}"
                f"(r{self.round}) from {self.sender}")


@dataclass
class Packet:
    """An on-air packet: a batch of logical messages plus packet-level fields."""

    sender: int
    messages: list[ComponentMessage]
    group: tuple = ()
    nack_bits: int = 0
    size_bytes: int = 0
    signed: bool = True
    signature: Any = None
    #: transcript digest cached at signing time; packets are immutable after
    #: finalisation and the same object reaches every simulated receiver, so
    #: the n receivers share one real digest computation (wall clock only --
    #: each receiver's modelled verification cost is still charged)
    digest: Any = None

    def __iter__(self):
        return iter(self.messages)

    def __len__(self) -> int:
        return len(self.messages)


@dataclass(frozen=True)
class SizeProfile:
    """Field widths used by the packet-size model."""

    header_bytes: int = 10
    hash_bytes: int = 32
    digital_signature_bytes: int = 40
    threshold_share_bytes: int = 21
    #: bytes for multi-hop routing information in the header
    routing_bytes: int = 0

    def nack_bytes(self, bits: int) -> int:
        """Bytes needed for a NACK bitmap of ``bits`` bits."""
        return max(1, math.ceil(bits / 8))


class PacketSizer:
    """Computes packet byte sizes for batched and baseline packets.

    The rules follow Section IV-C and Figures 4-6:

    * every packet carries a header and one public-key digital signature;
    * a batched packet carries one compressed NACK of N bits per phase group
      (O(N)); a baseline packet carries a per-instance NACK of N-1 bits;
    * non-INITIAL phases identify each instance by a hash (batched packets
      carry each instance's hash once, however many phases reference it);
    * small-value phases (votes) cost bits, not hashes;
    * INITIAL phases carry the full proposal;
    * share-bearing phases add one threshold share per message.
    """

    def __init__(self, num_nodes: int, profile: Optional[SizeProfile] = None) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.profile = profile or SizeProfile()

    # ------------------------------------------------------------- baseline
    def baseline_packet_bytes(self, message: ComponentMessage) -> int:
        """Size of a packet carrying a single logical message (no batching)."""
        profile = self.profile
        size = profile.header_bytes + profile.routing_bytes
        size += profile.digital_signature_bytes
        size += profile.nack_bytes(self.num_nodes - 1)
        if message.phase in PROPOSAL_PHASES:
            size += max(message.payload_bytes, 1)
        elif message.phase in VOTE_PHASES:
            # A vote still has to name the proposal it refers to.
            size += profile.hash_bytes + 1
        else:
            size += profile.hash_bytes
        if message.share_bytes > 0:
            size += message.share_bytes
        elif message.phase in SHARE_PHASES:
            size += profile.threshold_share_bytes
        return size

    # -------------------------------------------------------------- batched
    def batched_packet_bytes(self, messages: Iterable[ComponentMessage],
                             small_values: bool = False) -> int:
        """Size of a ConsensusBatcher packet carrying ``messages``.

        ``small_values`` selects the RBC-small / CBC-small layout (Fig. 5)
        where proposals are encoded in a few bits instead of full hashes.
        """
        messages = list(messages)
        profile = self.profile
        size = profile.header_bytes + profile.routing_bytes
        size += profile.digital_signature_bytes
        if not messages:
            return size
        phases = {message.phase for message in messages}
        # one compressed N-bit NACK per phase present in the packet
        size += len(phases) * profile.nack_bytes(self.num_nodes)
        # instance identification: one hash per distinct instance for
        # non-small formats (unless the only phase is INITIAL, which carries
        # the proposal itself)
        instances = {(message.kind, message.tag, message.instance)
                     for message in messages
                     if message.phase not in PROPOSAL_PHASES}
        if not small_values and instances:
            size += profile.hash_bytes * len(instances)
        for message in messages:
            if message.phase in PROPOSAL_PHASES:
                size += max(message.payload_bytes, 1)
            elif message.phase in VOTE_PHASES:
                # Votes across N instances pack into bitmaps: 2 bits each.
                size += 1 if small_values else 1
            elif message.payload_bytes > 0 and message.phase not in SHARE_PHASES:
                size += message.payload_bytes
            if message.share_bytes > 0:
                size += message.share_bytes
            elif message.phase in SHARE_PHASES:
                size += profile.threshold_share_bytes
        return size
