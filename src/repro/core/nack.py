"""Compressed NACK bitmaps (Section IV-C.1).

In the ECHO phase of a single RBC instance, a node's NACK is ``N - 1`` bits:
one bit per peer, telling which peers' echoes it has not yet received.  When
N parallel RBC instances are batched vertically, the naive encoding needs
``N * (N - 1)`` bits -- O(N^2) of scarce packet space.  ConsensusBatcher
compresses this to ``N`` bits: one bit per *instance*, set while the instance
has not yet collected its ``2f + 1`` quorum.  Peers that still hold the
missing data keep re-broadcasting until the bit clears.

Two encodings are provided so the compression can be measured and ablated:

* :class:`PerInstanceNack` -- the naive O(N^2) encoding;
* :class:`CompressedNack` -- the O(N) encoding of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class PerInstanceNack:
    """Naive NACK: for each instance, one bit per peer we have not heard from."""

    num_instances: int
    num_nodes: int
    #: missing[instance] = set of peer ids whose contribution is missing
    missing: dict[int, set[int]] = field(default_factory=dict)

    def mark_received(self, instance: int, peer: int) -> None:
        """Clear the (instance, peer) bit."""
        self._ensure(instance).discard(peer)

    def mark_all_missing(self, instance: int, peers: set[int]) -> None:
        """Initialise an instance's missing set."""
        self.missing[instance] = set(peers)

    def _ensure(self, instance: int) -> set[int]:
        if instance not in self.missing:
            self.missing[instance] = set(range(self.num_nodes))
        return self.missing[instance]

    def is_missing(self, instance: int, peer: int) -> bool:
        """True if peer's contribution to instance is still missing."""
        return peer in self._ensure(instance)

    def size_bits(self) -> int:
        """Wire size in bits: N instances times (N - 1) peer bits."""
        return self.num_instances * max(0, self.num_nodes - 1)

    def size_bytes(self) -> int:
        """Wire size in bytes."""
        return max(1, math.ceil(self.size_bits() / 8))


@dataclass
class CompressedNack:
    """ConsensusBatcher's NACK: one bit per instance ("quorum not yet reached")."""

    num_instances: int
    #: pending[instance] = True while the instance still needs contributions
    pending: dict[int, bool] = field(default_factory=dict)

    def set_pending(self, instance: int, pending: bool = True) -> None:
        """Mark an instance as (not) needing more contributions."""
        if not 0 <= instance < self.num_instances:
            raise IndexError(
                f"instance {instance} out of range [0, {self.num_instances})")
        self.pending[instance] = pending

    def is_pending(self, instance: int) -> bool:
        """True while the instance's quorum has not been reached."""
        return self.pending.get(instance, True)

    def clear(self, instance: int) -> None:
        """Mark an instance as satisfied."""
        self.set_pending(instance, False)

    def any_pending(self) -> bool:
        """True if any instance still needs contributions."""
        return any(self.is_pending(i) for i in range(self.num_instances))

    def to_bits(self) -> list[bool]:
        """The bitmap, one bit per instance."""
        return [self.is_pending(i) for i in range(self.num_instances)]

    def to_int(self) -> int:
        """The bitmap packed into an integer (bit i = instance i)."""
        value = 0
        for index, bit in enumerate(self.to_bits()):
            if bit:
                value |= 1 << index
        return value

    @classmethod
    def from_int(cls, value: int, num_instances: int) -> "CompressedNack":
        """Rebuild a bitmap from its packed integer form."""
        nack = cls(num_instances=num_instances)
        for index in range(num_instances):
            nack.pending[index] = bool((value >> index) & 1)
        return nack

    def size_bits(self) -> int:
        """Wire size in bits: one per instance."""
        return self.num_instances

    def size_bytes(self) -> int:
        """Wire size in bytes."""
        return max(1, math.ceil(self.size_bits() / 8))


def compression_ratio(num_instances: int, num_nodes: int) -> float:
    """Space saving of the compressed encoding over the naive one."""
    naive = PerInstanceNack(num_instances, num_nodes).size_bits()
    compressed = CompressedNack(num_instances).size_bits()
    if compressed == 0:
        return 1.0
    return naive / compressed
