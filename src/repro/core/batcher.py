"""The ConsensusBatcher transport and the unbatched baseline transport.

Both transports expose the same interface to consensus components:

* ``send(message)`` broadcasts a logical :class:`~repro.core.packet.ComponentMessage`
  (the component's own copy is delivered locally right away);
* ``register_receiver(callback)`` installs the upper layer that consumes
  delivered logical messages;
* ``activate`` / ``retire`` tell the transport which component instances are
  still running, which drives NACK-style retransmission.

The difference is how logical messages map onto packets and channel accesses:

* :class:`BaselineTransport` -- every logical message becomes its own packet
  with its own header, NACK and digital signature; N parallel components
  therefore compete for the channel N times per phase.  This is the
  "baseline wireless network" column of Table I and the ``*-baseline``
  protocols of Figure 13.
* :class:`ConsensusBatcherTransport` -- messages are written into slots,
  grouped per the packet formats of Figures 4-6 (vertical batching across
  instances, horizontal batching across phases), and each group is flushed as
  a single packet after a short aggregation window.  One channel access per
  flush serves every batched instance.

Reliability is NACK-style (Section IV-B.1): there are no per-frame ACKs; a
node that detects a stall (no frames received for a while, while some of its
component instances are still unfinished) re-broadcasts its current state, so
collided or adversarially delayed packets are eventually recovered.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.core.packet import (
    ComponentMessage,
    Packet,
    PacketSizer,
    SizeProfile,
    tag_in_scope,
    tag_scope_chain,
)
from repro.crypto.timing import CryptoSuite
from repro.net.reliability import ReliabilityMode
from repro.net.sim import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid a cycle with repro.net
    from repro.net.node import NetworkNode
    from repro.net.trace import NetworkTrace

ReceiverCallback = Callable[[ComponentMessage], None]

#: component kinds whose proposals are small enough for the Fig. 5 layouts
SMALL_VALUE_KINDS = frozenset({"rbc_small", "cbc_small", "aba_lc", "aba_sc", "aba_cp"})


@dataclass(frozen=True)
class TransportConfig:
    """Tuning knobs shared by both transports."""

    #: how long a batched group waits for more messages before flushing
    aggregation_window_s: float = 0.05
    #: how often the stall detector looks for missing progress
    resend_interval_s: float = 4.0
    #: jitter fraction applied to the resend interval (desynchronises nodes)
    resend_jitter: float = 0.5
    #: a node re-broadcasts its state if it has not received any frame for
    #: this long while unfinished instances remain
    stall_threshold_s: float = 3.0
    #: NACK (the paper's choice) or ACK reliability
    reliability: ReliabilityMode = ReliabilityMode.NACK
    #: whether packets carry a public-key digital signature
    sign_packets: bool = True
    #: interface name to broadcast on
    interface: Optional[str] = None


class BaseTransport:
    """Common machinery: packet signing, local echo, NACK-driven repair.

    Reliability follows the paper's NACK philosophy (Section IV-B.1): there
    are no per-frame acknowledgements.  Instead, each transport tracks which
    of its component instances are still *unfinished* and when traffic for
    their protocol family (``(kind, tag)``) was last heard.  A family that
    stays quiet while something local is unfinished triggers two actions:

    * the node re-broadcasts its own current state for the unfinished
      instances (so peers missing *our* contributions recover), and
    * the node broadcasts a small NACK request naming the instances it is
      stuck on; any peer holding matching state re-broadcasts it (so we
      recover contributions lost to collisions or adversarial delays).
    """

    NACK_KIND = "nack"

    def __init__(self, node: NetworkNode, num_nodes: int, suite: CryptoSuite,
                 trace: NetworkTrace,
                 config: Optional[TransportConfig] = None,
                 local_id: Optional[int] = None) -> None:
        self.node = node
        self.num_nodes = num_nodes
        #: this node's id inside the consensus domain (equals the global node
        #: id in single-hop deployments; differs inside multi-hop clusters)
        self.local_id = node.node_id if local_id is None else local_id
        self.suite = suite
        self.trace = trace
        self.config = config or TransportConfig()
        self.sizer = PacketSizer(
            num_nodes,
            SizeProfile(digital_signature_bytes=suite.digital_signature_bytes,
                        threshold_share_bytes=suite.threshold_share_bytes))
        self._receiver: Optional[ReceiverCallback] = None
        self._active: set[tuple] = set()
        self._complete: set[tuple] = set()
        self._latest: dict[tuple, ComponentMessage] = {}
        self._family_last_rx: dict[tuple, float] = {}
        #: scope roots reclaimed by release_tag (late-arrival bookkeeping of
        #: a released scope is skipped instead of re-created)
        self._released_tags: set = set()
        self._last_rx_time = 0.0
        self._packets_received = 0
        self.nack_requests_sent = 0
        self.nack_responses_sent = 0
        self._resend_timer = PeriodicTimer(
            node.sim, self.config.resend_interval_s, self._maybe_resend,
            jitter=self.config.resend_jitter,
            label=f"transport-resend:{node.node_id}")
        self._resend_timer.start()

    # ------------------------------------------------------------------ wiring
    def register_receiver(self, callback: ReceiverCallback) -> None:
        """Install the upper-layer consumer of logical messages."""
        self._receiver = callback

    def activate(self, kind: str, tag: Any, instance: int) -> None:
        """Mark a component instance as running (its slots will be resent)."""
        self._active.add((kind, tag, instance))

    def retire(self, kind: str, tag: Any, instance: int) -> None:
        """Mark a component instance as finished (stop resending for it)."""
        self._active.discard((kind, tag, instance))

    def is_active(self, kind: str, tag: Any, instance: int) -> bool:
        """True while the instance has not been retired."""
        return (kind, tag, instance) in self._active

    def mark_complete(self, kind: str, tag: Any, instance: int) -> None:
        """Note that the local instance finished (stops NACK requests for it)."""
        self._complete.add((kind, tag, instance))

    def mark_incomplete(self, kind: str, tag: Any, instance: int) -> None:
        """Re-open an instance (e.g. the coin manager when a new round starts)."""
        self._complete.discard((kind, tag, instance))

    def shutdown(self) -> None:
        """Stop background timers (end of run)."""
        self._resend_timer.stop()

    def release_tag(self, root: Any) -> None:
        """Forget all per-slot state whose tag is in the scope of ``root``.

        Epoch GC for long (streaming) runs: retired slots would otherwise
        accumulate in ``_active`` / ``_complete`` / ``_latest`` forever.  Must
        only be called once the whole domain has finished the scope -- a peer
        can no longer NACK-request state that was released here.  The root is
        remembered (one small tuple per released epoch) so frames still in
        flight at release time cannot re-create per-family bookkeeping.
        """
        self._released_tags.add(root)
        for slots in (self._active, self._complete):
            for key in [key for key in slots if tag_in_scope(key[1], root)]:
                slots.discard(key)
        for key in [key for key in self._latest
                    if tag_in_scope(key[1], root)]:
            del self._latest[key]
        for family in [family for family in self._family_last_rx
                       if tag_in_scope(family[1], root)]:
            del self._family_last_rx[family]

    # ------------------------------------------------------------------- send
    def send(self, message: ComponentMessage) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _deliver_local(self, message: ComponentMessage) -> None:
        """A node is always a recipient of its own broadcast."""
        if self._receiver is not None:
            self._receiver(message)

    # ---------------------------------------------------------------- receive
    def handle_frame(self, sender: int, payload: Any) -> None:
        """Entry point bound as the node's protocol stack."""
        self._last_rx_time = self.node.sim.now
        self._packets_received += 1
        if not isinstance(payload, Packet):
            return
        if self.config.sign_packets and payload.signed:
            digest = self._packet_digest(payload)
            if not self.suite.verify(payload.sender, digest, payload.signature):
                return
        for message in payload.messages:
            if message.kind == self.NACK_KIND:
                self._on_nack_request(message)
                continue
            if not self._released_tags or not any(
                    root in self._released_tags
                    for root in tag_scope_chain(message.tag)):
                self._family_last_rx[(message.kind, message.tag)] = \
                    self.node.sim.now
            self.trace.record_logical_receive(self.node.node_id)
            if self._receiver is not None:
                self._receiver(message)

    # --------------------------------------------------------------- signing
    @staticmethod
    def _packet_digest(packet: Packet) -> bytes:
        if packet.digest is None:
            descriptor = "|".join(message.describe() for message in packet.messages)
            packet.digest = hashlib.sha256(
                f"{packet.sender}|{packet.group}|{descriptor}".encode()).digest()
        return packet.digest

    def _finalize_packet(self, packet: Packet) -> Packet:
        if self.config.sign_packets:
            packet.signature = self.suite.sign(self._packet_digest(packet))
            packet.signed = True
        else:
            packet.signature = None
            packet.signed = False
        return packet

    # ------------------------------------------------------------ reliability
    def _unfinished(self) -> dict[tuple, set[int]]:
        """Unfinished instances grouped by protocol family ``(kind, tag)``."""
        stuck: dict[tuple, set[int]] = {}
        # sorted for cross-process determinism (set iteration order of tuples
        # containing strings is salted per process)
        for kind, tag, instance in sorted(self._active, key=repr):
            if (kind, tag, instance) in self._complete:
                continue
            stuck.setdefault((kind, tag), set()).add(instance)
        return stuck

    def _maybe_resend(self) -> None:
        """Per-family stall detector driving the NACK repair cycle."""
        stuck = self._unfinished()
        if not stuck:
            return
        now = self.node.sim.now
        quiet_families = {
            family: instances for family, instances in stuck.items()
            if now - self._family_last_rx.get(family, 0.0) >= self.config.stall_threshold_s}
        if not quiet_families:
            return
        self.node.run_task(lambda: self._repair(quiet_families))

    def _repair(self, quiet_families: dict[tuple, set[int]]) -> None:
        """Re-broadcast our state and ask peers for what we are missing."""
        for family, instances in quiet_families.items():
            self._resend_family(family, instances)
            self._send_nack_request(family, instances)

    def _send_nack_request(self, family: tuple, instances: set[int]) -> None:
        kind, tag = family
        request = ComponentMessage(
            kind=self.NACK_KIND, instance=0, phase="request",
            sender=self.local_id,
            payload={"family_kind": kind, "family_tag": tag,
                     "instances": sorted(instances)},
            payload_bytes=max(1, (self.num_nodes + 7) // 8), tag=tag)
        packet = Packet(sender=self.local_id, messages=[request],
                        group=(self.NACK_KIND, kind, tag))
        packet.size_bytes = self.sizer.baseline_packet_bytes(request)
        self._finalize_packet(packet)
        self.nack_requests_sent += 1
        self.node.broadcast(packet, packet.size_bytes, self.config.interface)

    def _on_nack_request(self, message: ComponentMessage) -> None:
        payload = message.payload or {}
        kind = payload.get("family_kind")
        tag = payload.get("family_tag")
        instances = set(payload.get("instances", []))
        if kind is None:
            return
        self.nack_responses_sent += 1
        self._respond_to_nack(kind, tag, instances)

    # ------------------------------------------------- subclass responsibilities
    def _resend_family(self, family: tuple, instances: set[int]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def _respond_to_nack(self, kind: str, tag: Any, instances: set[int]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract


class BaselineTransport(BaseTransport):
    """One packet (and one channel access) per logical message."""

    def send(self, message: ComponentMessage) -> None:
        """Broadcast ``message`` in its own packet."""
        self.trace.record_logical_send(self.node.node_id)
        self._latest[message.slot_key()] = message
        self._broadcast_single(message)
        self._deliver_local(message)

    def _broadcast_single(self, message: ComponentMessage) -> None:
        packet = Packet(sender=self.local_id, messages=[message],
                        group=("single",) + message.slot_key())
        packet.size_bytes = self.sizer.baseline_packet_bytes(message)
        self._finalize_packet(packet)
        self.node.broadcast(packet, packet.size_bytes, self.config.interface)

    def _matching_messages(self, kind: str, tag: Any,
                           instances: set[int]) -> list[ComponentMessage]:
        return [message for slot_key, message in self._latest.items()
                if slot_key[0] == kind and slot_key[1] == tag
                and slot_key[2] in instances]

    def _resend_family(self, family: tuple, instances: set[int]) -> None:
        kind, tag = family
        for message in self._matching_messages(kind, tag, instances):
            self._broadcast_single(message)

    def _respond_to_nack(self, kind: str, tag: Any, instances: set[int]) -> None:
        for message in self._matching_messages(kind, tag, instances):
            self._broadcast_single(message)


class ConsensusBatcherTransport(BaseTransport):
    """Vertical + horizontal batching of parallel consensus components.

    Outgoing logical messages are written into per-group slots; at most one
    frame per group sits in the MAC queue at any time, and its content is
    *materialised when the node actually wins channel access* (late binding
    via the frame builder).  Every update that accumulated while the node was
    contending for the channel therefore rides in the same packet -- one
    channel access serves all batched instances, which is exactly the saving
    ConsensusBatcher is designed for.
    """

    def __init__(self, node: NetworkNode, num_nodes: int, suite: CryptoSuite,
                 trace: NetworkTrace,
                 config: Optional[TransportConfig] = None,
                 local_id: Optional[int] = None) -> None:
        super().__init__(node, num_nodes, suite, trace, config, local_id)
        self._groups: dict[tuple, dict[tuple, ComponentMessage]] = {}
        self._dirty: dict[tuple, set[tuple]] = {}
        self._queued_groups: set[tuple] = set()

    # -------------------------------------------------------------- grouping
    @staticmethod
    def group_of(message: ComponentMessage) -> tuple:
        """Which packet group (Figs. 4-6) a message belongs to."""
        kind, tag, phase = message.kind, message.tag, message.phase
        if kind in ("rbc", "prbc"):
            if phase == "initial":
                return ("rbc_init", tag)
            if phase == "done":
                return ("prbc_done", tag)
            return ("rbc_er", tag)
        if kind == "cbc":
            if phase == "initial":
                return ("cbc_init", tag)
            return ("cbc_ef", tag)
        if kind in ("rbc_small", "cbc_small"):
            return (kind, tag)
        if kind in ("aba_lc", "aba_sc", "aba_cp", "coin"):
            return (kind, tag, message.round)
        # anything else (e.g. ACS-level decryption shares) batches per kind+phase
        return (kind, tag, phase)

    # ------------------------------------------------------------------- send
    def send(self, message: ComponentMessage) -> None:
        """Record the message in its batching slot and ensure a frame is queued."""
        self.trace.record_logical_send(self.node.node_id)
        group = self.group_of(message)
        key = message.slot_key()
        self._groups.setdefault(group, {})[key] = message
        self._dirty.setdefault(group, set()).add(key)
        self._ensure_queued(group)
        self._deliver_local(message)

    def _ensure_queued(self, group: tuple) -> None:
        """Queue (at most) one frame for the group; content binds at TX time."""
        if group in self._queued_groups:
            return
        self._queued_groups.add(group)
        self.node.broadcast_deferred(lambda g=group: self._build_packet(g),
                                     self.config.interface)

    # ----------------------------------------------------------- packet build
    def _collect(self, group: tuple,
                 keys: Optional[set[tuple]] = None) -> list[ComponentMessage]:
        slots = self._groups.get(group, {})
        if keys is None:
            selected = list(slots.values())
        else:
            # deterministic packet contents regardless of set iteration order
            selected = [slots[key] for key in sorted(keys, key=repr)
                        if key in slots]
        return [message for message in selected
                if (message.kind, message.tag, message.instance) in self._active]

    def _build_packet(self, group: tuple) -> Optional[tuple[Packet, int]]:
        """Frame builder: called by the MAC right before transmission."""
        self._queued_groups.discard(group)
        # pop rather than reset-in-place: a group released by epoch GC while
        # its frame was queued must not be re-created as an empty entry
        # (later sends setdefault the key back for live groups)
        dirty = self._dirty.pop(group, set())
        messages = self._collect(group, dirty)
        if not messages:
            return None
        packet = self._make_packet(group, messages)
        return packet, packet.size_bytes

    def _make_packet(self, group: tuple,
                     messages: list[ComponentMessage]) -> Packet:
        small = messages[0].kind in SMALL_VALUE_KINDS
        packet = Packet(sender=self.local_id, messages=list(messages),
                        group=group)
        packet.size_bytes = self.sizer.batched_packet_bytes(messages,
                                                            small_values=small)
        self._finalize_packet(packet)
        return packet

    # ----------------------------------------------------------- housekeeping
    def release_tag(self, root: Any) -> None:
        """Epoch GC: also drop the batching slots of the released scope."""
        super().release_tag(root)
        stale_groups = [group for group in self._groups
                        if tag_in_scope(group[1], root)]
        for group in stale_groups:
            del self._groups[group]
            self._dirty.pop(group, None)
            # A queued-but-unsent frame for the group materialises empty (its
            # slots are gone and _collect filters inactive instances), so the
            # deferred builder is harmless; just forget the queued marker.
            self._queued_groups.discard(group)

    def retire_rounds_before(self, kind: str, tag: Any, instance: int,
                             round_number: int) -> None:
        """Drop slots of earlier ABA rounds once an instance has advanced."""
        for group, slots in self._groups.items():
            stale = [key for key, message in slots.items()
                     if message.kind == kind and message.tag == tag
                     and message.instance == instance
                     and message.round < round_number]
            for key in stale:
                del slots[key]
                self._dirty.get(group, set()).discard(key)

    def _mark_family_dirty(self, kind: str, tag: Any, instances: set[int]) -> None:
        for group, slots in self._groups.items():
            matching = {key for key, message in slots.items()
                        if message.kind == kind and message.tag == tag
                        and message.instance in instances}
            if matching:
                self._dirty.setdefault(group, set()).update(matching)
                self._ensure_queued(group)

    def _resend_family(self, family: tuple, instances: set[int]) -> None:
        kind, tag = family
        self._mark_family_dirty(kind, tag, instances)

    def _respond_to_nack(self, kind: str, tag: Any, instances: set[int]) -> None:
        self._mark_family_dirty(kind, tag, instances)
