"""Analytical message-overhead model (Table I of the paper).

The paper counts the *message overhead per node* of an N-component parallel
protocol in three settings:

==================  =====================  ===================  ==================
component           wired network          baseline wireless    ConsensusBatcher
==================  =====================  ===================  ==================
RBC                 (N-1)(1 + 2N)          1 + 2N               1 + 2
CBC                 3(N-1)                 1 + (N-1) + 1        1 + 1 + 1
PRBC                (N-1)(1 + 3N)          1 + 3N               1 + 3
Bracha's ABA        3N(N-1)(1 + 2N)        3N(1 + 2N)           3(1 + 2)
Cachin's ABA        3N(N-1)                3N                   3
==================  =====================  ===================  ==================

The wired column counts unicasts (a broadcast to N-1 peers costs N-1
messages); the wireless baseline exploits the shared channel (a broadcast is
one transmission); ConsensusBatcher further merges the N parallel instances
into a single transmission per phase.  These formulas are reproduced here and
cross-checked against the simulator's channel-access counts by
``benchmarks/bench_table1_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass


class OverheadError(ValueError):
    """Raised for invalid parameters (e.g. N < 1)."""


@dataclass(frozen=True)
class OverheadRow:
    """Message overhead per node for one component in the three settings."""

    component: str
    wired: int
    wireless_baseline: int
    consensus_batcher: int

    @property
    def batcher_vs_baseline(self) -> float:
        """Reduction factor of ConsensusBatcher over the wireless baseline."""
        if self.consensus_batcher == 0:
            return float("inf")
        return self.wireless_baseline / self.consensus_batcher

    @property
    def baseline_vs_wired(self) -> float:
        """Reduction factor of the wireless baseline over the wired network."""
        if self.wireless_baseline == 0:
            return float("inf")
        return self.wired / self.wireless_baseline


class MessageOverheadModel:
    """Per-node message overhead of N-component parallel protocols."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise OverheadError(f"need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    # ---------------------------------------------------------------- rows
    def rbc(self) -> OverheadRow:
        """Reliable broadcast: INITIAL + ECHO + READY."""
        n = self.num_nodes
        return OverheadRow("RBC",
                           wired=(n - 1) * (1 + 2 * n),
                           wireless_baseline=1 + 2 * n,
                           consensus_batcher=1 + 2)

    def cbc(self) -> OverheadRow:
        """Consistent broadcast: INITIAL + ECHO (N-to-1) + FINISH."""
        n = self.num_nodes
        return OverheadRow("CBC",
                           wired=3 * (n - 1),
                           wireless_baseline=1 + (n - 1) + 1,
                           consensus_batcher=1 + 1 + 1)

    def prbc(self) -> OverheadRow:
        """Provable reliable broadcast: RBC + DONE."""
        n = self.num_nodes
        return OverheadRow("PRBC",
                           wired=(n - 1) * (1 + 3 * n),
                           wireless_baseline=1 + 3 * n,
                           consensus_batcher=1 + 3)

    def bracha_aba(self) -> OverheadRow:
        """Bracha's (local-coin) ABA: three RBC phases per round, per instance."""
        n = self.num_nodes
        return OverheadRow("Bracha's ABA",
                           wired=3 * n * (n - 1) * (1 + 2 * n),
                           wireless_baseline=3 * n * (1 + 2 * n),
                           consensus_batcher=3 * (1 + 2))

    def cachin_aba(self) -> OverheadRow:
        """Cachin-style (shared-coin) ABA: BVAL + AUX + SHARE per round."""
        n = self.num_nodes
        return OverheadRow("Cachin's ABA",
                           wired=3 * n * (n - 1),
                           wireless_baseline=3 * n,
                           consensus_batcher=3)

    # --------------------------------------------------------------- table
    def table(self) -> list[OverheadRow]:
        """All rows of Table I."""
        return [self.rbc(), self.cbc(), self.prbc(),
                self.bracha_aba(), self.cachin_aba()]

    def row(self, component: str) -> OverheadRow:
        """Look up one row by (case-insensitive) component name."""
        lookup = {
            "rbc": self.rbc,
            "cbc": self.cbc,
            "prbc": self.prbc,
            "bracha's aba": self.bracha_aba,
            "bracha": self.bracha_aba,
            "aba-lc": self.bracha_aba,
            "cachin's aba": self.cachin_aba,
            "cachin": self.cachin_aba,
            "aba-sc": self.cachin_aba,
        }
        try:
            return lookup[component.strip().lower()]()
        except KeyError as exc:
            raise OverheadError(
                f"unknown component {component!r}; known: {sorted(lookup)}") from exc

    def as_dict(self) -> dict[str, dict[str, int]]:
        """The table as nested dictionaries (for reporting / JSON output)."""
        return {
            row.component: {
                "wired": row.wired,
                "wireless_baseline": row.wireless_baseline,
                "consensus_batcher": row.consensus_batcher,
            }
            for row in self.table()
        }
