"""The packet formats of Figures 4, 5 and 6.

Each format describes, field by field, one of the paper's batched packet
layouts.  They serve three purposes:

* documentation-as-code of the paper's packet structures;
* the byte budgets used by the overhead analysis and by tests that check the
  O(N^2) -> O(N) NACK compression and the effect of signature sizes;
* deciding how many parallel instances fit in one maximum-size frame (the
  "packet parallelism D" discussed for multi-hop networks in Section V-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


def _bits(n: int) -> int:
    """Bytes needed for ``n`` bits."""
    return max(1, math.ceil(n / 8))


@dataclass(frozen=True)
class FieldSpec:
    """One field of a packet format."""

    name: str
    size_bytes: int
    description: str = ""


@dataclass(frozen=True)
class PacketFormat:
    """A packet layout: an ordered list of fields."""

    name: str
    figure: str
    fields: tuple[FieldSpec, ...]

    @property
    def total_bytes(self) -> int:
        """Total packet size."""
        return sum(field.size_bytes for field in self.fields)

    def field(self, name: str) -> FieldSpec:
        """Look up a field by name."""
        for candidate in self.fields:
            if candidate.name == name:
                return candidate
        raise KeyError(f"format {self.name!r} has no field {name!r}; "
                       f"fields: {[f.name for f in self.fields]}")


HEADER_BYTES = 10
HASH_BYTES = 32


def rbc_init_format(num_nodes: int, proposal_bytes: int,
                    signature_bytes: int = 40) -> PacketFormat:
    """Fig. 4a, RBC_INIT: the INITIAL phase packet of N parallel RBC instances."""
    return PacketFormat(
        name="RBC_INIT", figure="4a",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("initial_nack", _bits(num_nodes - 1),
                      "N-1 bits: which peers' proposals are still missing"),
            FieldSpec("value", proposal_bytes, "the full proposal"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def rbc_er_format(num_nodes: int, signature_bytes: int = 40) -> PacketFormat:
    """Fig. 4a, RBC_ER: vertically+horizontally batched ECHO/READY packet."""
    return PacketFormat(
        name="RBC_ER", figure="4a",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("echo_nack", _bits(num_nodes),
                      "N bits: instance i still lacks 2f+1 echoes"),
            FieldSpec("echo", _bits(num_nodes), "N bits of echo votes"),
            FieldSpec("ready_nack", _bits(num_nodes),
                      "N bits: instance i still lacks 2f+1 readies"),
            FieldSpec("ready", _bits(num_nodes), "N bits of ready votes"),
            FieldSpec("hash", HASH_BYTES * num_nodes,
                      "hash of each of the N proposals"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def rbc_small_format(num_nodes: int, signature_bytes: int = 40) -> PacketFormat:
    """Fig. 5a: N parallel RBC instances with small (2-bit) proposals."""
    return PacketFormat(
        name="RBC_SMALL", figure="5a",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("initial_nack", _bits(num_nodes), "N bits"),
            FieldSpec("initial", _bits(2 * num_nodes),
                      "2 bits per instance: proposal in {0, 1, bot}"),
            FieldSpec("echo_nack", _bits(num_nodes), "N bits"),
            FieldSpec("echo", _bits(num_nodes), "N bits of echo votes"),
            FieldSpec("ready_nack", _bits(num_nodes), "N bits"),
            FieldSpec("ready", _bits(num_nodes), "N bits of ready votes"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def cbc_init_format(num_nodes: int, proposal_bytes: int,
                    signature_bytes: int = 40) -> PacketFormat:
    """Fig. 4b, CBC_INIT: the INITIAL phase packet of N parallel CBC instances."""
    return PacketFormat(
        name="CBC_INIT", figure="4b",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("initial_nack", _bits(num_nodes - 1), "N-1 bits"),
            FieldSpec("value", proposal_bytes, "the full proposal"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def cbc_ef_format(num_nodes: int, threshold_share_bytes: int = 21,
                  signature_bytes: int = 40) -> PacketFormat:
    """Fig. 4b, CBC_EF: batched ECHO/FINISH packet of N parallel CBC instances."""
    return PacketFormat(
        name="CBC_EF", figure="4b",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("echo_nack", _bits(num_nodes - 1), "N-1 bits"),
            FieldSpec("finish_nack", _bits(num_nodes - 1), "N-1 bits"),
            FieldSpec("share", threshold_share_bytes * num_nodes,
                      "threshold signature share per instance"),
            FieldSpec("hash", HASH_BYTES * num_nodes,
                      "hash of each of the N proposals"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def cbc_small_format(num_nodes: int, threshold_share_bytes: int = 21,
                     signature_bytes: int = 40) -> PacketFormat:
    """Fig. 5b: N parallel CBC instances with small proposals (node-id lists)."""
    value_bits_per_instance = num_nodes  # a 2f+1 node-id list fits in N bits
    return PacketFormat(
        name="CBC_SMALL", figure="5b",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("initial_nack", _bits(num_nodes - 1), "N-1 bits"),
            FieldSpec("echo_nack", _bits(num_nodes - 1), "N-1 bits"),
            FieldSpec("finish_nack", _bits(num_nodes - 1), "N-1 bits"),
            FieldSpec("share", threshold_share_bytes * num_nodes,
                      "threshold signature share per instance"),
            FieldSpec("value", _bits(value_bits_per_instance * num_nodes),
                      "N bits per proposal (node-id list)"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def prbc_done_format(num_nodes: int, threshold_share_bytes: int = 21,
                     signature_bytes: int = 40) -> PacketFormat:
    """Fig. 4c: the DONE-phase packet of N parallel PRBC instances."""
    return PacketFormat(
        name="PRBC_DONE", figure="4c",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("sig_nack", _bits(num_nodes), "N bits"),
            FieldSpec("share", threshold_share_bytes * num_nodes,
                      "threshold signature share per instance"),
            FieldSpec("hash", HASH_BYTES * num_nodes,
                      "hash of each of the N proposals"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def aba_lc_format(num_nodes: int, parallel_instances: int,
                  signature_bytes: int = 40) -> PacketFormat:
    """Fig. 6a: k parallel Bracha's ABA instances (three batched RBC-small rounds)."""
    per_rbc_nack = 3 * _bits(num_nodes) + _bits(2 * num_nodes)  # nack+votes of Fig. 5a core
    return PacketFormat(
        name="ABA_LC", figure="6a",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("round_nack", _bits(num_nodes), "N bits for the base instance"),
            FieldSpec("round_nack_ext",
                      _bits(num_nodes) * max(0, parallel_instances - 1),
                      "extension covering the additional parallel ABA instances"),
            FieldSpec("nack_rbc_1", per_rbc_nack * parallel_instances,
                      "phase-1 RBC votes for every batched ABA instance"),
            FieldSpec("nack_rbc_2", per_rbc_nack * parallel_instances,
                      "phase-2 RBC votes for every batched ABA instance"),
            FieldSpec("nack_rbc_3", per_rbc_nack * parallel_instances,
                      "phase-3 RBC votes for every batched ABA instance"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


def aba_sc_format(num_nodes: int, parallel_instances: int,
                  threshold_share_bytes: int = 21,
                  signature_bytes: int = 40) -> PacketFormat:
    """Fig. 6b: k parallel Cachin-style ABA instances (BVAL/AUX/SHARE batched)."""
    return PacketFormat(
        name="ABA_SC", figure="6b",
        fields=(
            FieldSpec("header", HEADER_BYTES, "node id, packet type, routing info"),
            FieldSpec("bval", _bits(2 * num_nodes * parallel_instances),
                      "k * 2N bits of BVAL votes"),
            FieldSpec("aux", _bits(2 * num_nodes * parallel_instances),
                      "k * 2N bits of AUX votes"),
            FieldSpec("share_nack", _bits(num_nodes - 1), "N-1 bits"),
            FieldSpec("share", threshold_share_bytes,
                      "one coin share (the k instances share the round coin)"),
            FieldSpec("signature", signature_bytes, "public-key digital signature"),
        ))


#: registry of format constructors keyed by name, for tests and reporting
FORMAT_BUILDERS: dict[str, Callable[..., PacketFormat]] = {
    "RBC_INIT": rbc_init_format,
    "RBC_ER": rbc_er_format,
    "RBC_SMALL": rbc_small_format,
    "CBC_INIT": cbc_init_format,
    "CBC_EF": cbc_ef_format,
    "CBC_SMALL": cbc_small_format,
    "PRBC_DONE": prbc_done_format,
    "ABA_LC": aba_lc_format,
    "ABA_SC": aba_sc_format,
}
