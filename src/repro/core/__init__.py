"""ConsensusBatcher: the paper's primary contribution.

The packet of a wireless asynchronous BFT consensus node is divided into four
parts -- header, NACK, value and signature (Section IV-B.1).  ConsensusBatcher
merges the messages of N parallel consensus components into shared packets:

* **vertical batching** merges the same phase across the N parallel instances
  (e.g. the ECHO votes of all N RBC instances ride in one packet), and
* **horizontal batching** merges different phases of the same component
  (e.g. ECHO and READY, or the three RBC phases inside Bracha's ABA),

so that one channel-access contention serves what would otherwise be N (or
3N) separate transmissions.  The compressed NACK encoding drops the per-packet
NACK cost from O(N^2) to O(N) bits.

Modules
-------
:mod:`~repro.core.packet`   the logical message and packet model plus the size estimator
:mod:`~repro.core.formats`  the packet formats of Figures 4, 5 and 6
:mod:`~repro.core.nack`     compressed NACK bitmaps
:mod:`~repro.core.batcher`  the batched (ConsensusBatcher) and baseline transports
:mod:`~repro.core.dma`      the DMA buffer/alignment model (Section IV-B.2)
:mod:`~repro.core.overhead` the analytical message-overhead model of Table I
"""

from repro.core.packet import ComponentMessage, Packet, PacketSizer, SizeProfile
from repro.core.nack import CompressedNack, PerInstanceNack
from repro.core.formats import (
    FieldSpec,
    PacketFormat,
    rbc_init_format,
    rbc_er_format,
    rbc_small_format,
    cbc_init_format,
    cbc_ef_format,
    cbc_small_format,
    prbc_done_format,
    aba_lc_format,
    aba_sc_format,
)
from repro.core.batcher import (
    TransportConfig,
    BaseTransport,
    BaselineTransport,
    ConsensusBatcherTransport,
)
from repro.core.dma import DmaBuffer, DmaConfig
from repro.core.overhead import MessageOverheadModel, OverheadRow

__all__ = [
    "ComponentMessage",
    "Packet",
    "PacketSizer",
    "SizeProfile",
    "CompressedNack",
    "PerInstanceNack",
    "FieldSpec",
    "PacketFormat",
    "rbc_init_format",
    "rbc_er_format",
    "rbc_small_format",
    "cbc_init_format",
    "cbc_ef_format",
    "cbc_small_format",
    "prbc_done_format",
    "aba_lc_format",
    "aba_sc_format",
    "TransportConfig",
    "BaseTransport",
    "BaselineTransport",
    "ConsensusBatcherTransport",
    "DmaBuffer",
    "DmaConfig",
    "MessageOverheadModel",
    "OverheadRow",
]
