"""DMA buffer model with the packet-alignment optimisation (Section IV-B.2).

On the paper's single-core STM32 boards, received frames land in a DMA buffer
and are only handed to the CPU when a half- or full-buffer interrupt fires.
Without care, short packets accumulate in the buffer and their processing is
delayed, which stretches consensus timers and indirectly congests the network.

The paper's DMA module sizes the buffer at twice the maximum protocol packet
length (``2D``) and pads/aligns packets so that every arrival lands in
``[D, 2D]`` and immediately triggers a half- or full-buffer interrupt.  This
module reproduces that mechanism as a queueing model:

* with ``alignment_enabled`` every frame triggers an interrupt after a small
  fixed latency (the optimised behaviour);
* without alignment, frames shorter than the half-buffer threshold wait until
  either enough bytes accumulate or an idle flush timeout expires, modelling
  the accumulation delay the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DmaConfig:
    """Parameters of the DMA receive path."""

    #: maximum protocol packet length D; the buffer is 2*D bytes
    max_packet_bytes: int = 256
    #: whether the paper's alignment optimisation is enabled
    alignment_enabled: bool = True
    #: latency from "frame fully received" to "CPU interrupt" when aligned
    interrupt_latency_s: float = 0.0005
    #: how long an unaligned short frame may sit in the buffer before a
    #: timeout flush hands it to the CPU
    idle_flush_s: float = 0.050

    @property
    def buffer_bytes(self) -> int:
        """Total DMA buffer size (2D)."""
        return 2 * self.max_packet_bytes

    @property
    def half_threshold_bytes(self) -> int:
        """The half-buffer interrupt threshold (D)."""
        return self.max_packet_bytes


@dataclass
class DmaBuffer:
    """Stateful model of one node's DMA receive buffer."""

    config: DmaConfig = field(default_factory=DmaConfig)
    pending_bytes: int = 0
    frames_buffered: int = 0
    interrupts: int = 0
    delayed_frames: int = 0

    def on_frame(self, now: float, size_bytes: int) -> float:
        """Register an arriving frame; return the time its CPU interrupt fires."""
        if size_bytes < 0:
            raise ValueError(f"frame size must be non-negative, got {size_bytes}")
        if self.config.alignment_enabled:
            # Alignment pads every packet to at least D bytes, so each arrival
            # crosses the half (or full) threshold and interrupts immediately.
            self.interrupts += 1
            return now + self.config.interrupt_latency_s
        self.pending_bytes += size_bytes
        self.frames_buffered += 1
        if self.pending_bytes >= self.config.half_threshold_bytes:
            self.pending_bytes = 0
            self.frames_buffered = 0
            self.interrupts += 1
            return now + self.config.interrupt_latency_s
        # The frame waits for more data; model the wait as the idle flush
        # timeout (the worst case the paper is designing against).
        self.delayed_frames += 1
        self.pending_bytes = 0
        self.frames_buffered = 0
        self.interrupts += 1
        return now + self.config.idle_flush_s

    def reset(self) -> None:
        """Clear buffered state (used between runs)."""
        self.pending_bytes = 0
        self.frames_buffered = 0
