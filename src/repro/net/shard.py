"""Conservative (CMB-style) synchronization for sharded simulations.

The multi-hop topology gives natural shard boundaries: intra-cluster traffic
never leaves its cluster channel, and the only cross-cluster coupling is the
leaders' backbone channel.  This module runs one event loop per shard (a
group of clusters) and synchronizes them with the classic conservative
discipline:

* every shard executes one **barrier window** ``(H_prev, H]`` at a time on
  its own :class:`~repro.net.sim.Simulator` (own heap, sequence counter and
  RNG stream);
* the horizon ``H`` is chosen so that no shard can *start* a backbone
  transmission strictly inside the window.  The lookahead comes from CSMA:
  any fresh channel access must pass through ``CsmaMac._start_backoff``,
  which defers by at least the DIFS period, so
  ``bound = min(next scheduled backbone attempt, next heap event + DIFS)``
  is a sound per-shard promise (a consequence: every backbone transmission
  starts *exactly on* a window horizon);
* backbone transmissions are exchanged at the barrier, serialized through
  the digest-preserving codec in :mod:`repro.net.channel` and replayed in
  every other shard as **ghost transmissions** on that shard's backbone
  mirror: they occupy the channel, collide symmetrically with local
  transmissions (the strict-overlap rule depends only on ``(start, end)``
  pairs, which all shards agree on) and deliver to local leaders through the
  ordinary half-duplex / hop-delay / adversary pipeline -- drawing jitter
  from the *receiving* shard's RNG;
* cross-shard events are replayed in deterministic ``(time, shard, seq)``
  order, which makes a run a pure function of ``(scenario, seed, shards)``
  -- bit-identical for any number of worker processes, since worker
  placement changes neither the window sequence nor any shard-local
  execution.

Same-instant semantics at a horizon ``H`` are fixed by construction: a
transmission starting exactly at ``H`` is not carrier-sensed by *other*
shards' events at ``H`` (they run before the ghost is injected at the next
barrier), but it still collides with any overlapping transmission because
collision flags are (re)computed from ``(start, end)`` whenever a
transmission or ghost enters the channel while another is on the air.

Multi-worker execution forks one process per worker over ``multiprocessing``
pipes; shard state never migrates, only serialized emissions and horizon
announcements cross process boundaries.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.net.channel import (
    Frame,
    Transmission,
    WirelessChannel,
    decode_boundary_frame,
    encode_boundary_frame,
)
from repro.net.csma import CsmaMac
from repro.net.sim import ShardedSimulator, SimulationError, Simulator


class ShardSyncError(RuntimeError):
    """Raised when the conservative synchronization invariants are violated."""


@dataclass(frozen=True)
class Emission:
    """One backbone transmission crossing a shard boundary.

    ``shard``/``seq`` identify the emission in its home shard's order; the
    coordinator sorts all emissions of a barrier by ``(start, shard, seq)``
    before replay, which is the deterministic cross-shard tie-break.
    ``data`` is the frame serialized by
    :func:`repro.net.channel.encode_boundary_frame`.
    """

    shard: int
    seq: int
    sender: int
    start: float
    end: float
    size_bytes: int
    data: bytes


@dataclass
class WindowResult:
    """What one shard reports back at a barrier."""

    bound: float
    emissions: list[Emission]
    done: bool
    processed: int


class GhostMac:
    """Stand-in sender MAC for a remote (ghost) transmission.

    Never attached to the channel: it only gives the replayed transmission a
    sender identity.  It reports itself as never transmitting locally and
    swallows the transmit-done callback (the real MAC gets it in the home
    shard).
    """

    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def was_transmitting_during(self, start: float, end: float) -> bool:
        return False

    def on_transmit_done(self, frame: Frame, collided: bool) -> None:
        return None


class ShardBackboneChannel(WirelessChannel):
    """A shard's mirror of the global backbone channel.

    Local leaders transmit on it exactly as on the classic backbone; every
    transmission is additionally captured as an :class:`Emission` for the
    other shards.  Remote transmissions are injected as ghosts: they take
    part in carrier sensing and collisions and deliver to local leaders, but
    their trace ownership is split -- transmission/channel-access counters
    belong to the home shard, collision counters to the home shard, delivery
    (and drop/half-duplex) counters to the shard hosting the receiver -- so
    summing per-shard traces reproduces the single-channel totals.
    """

    def __init__(self, *args: Any, shard_index: int = 0, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.shard_index = shard_index
        self._emission_seq = 0
        self._outbound: list[Emission] = []

    # ------------------------------------------------------------- local side
    def transmit(self, sender_mac: Any, frame: Frame) -> Transmission:
        transmission = super().transmit(sender_mac, frame)
        # Serialize immediately: the frame is materialised (builder already
        # ran) and must cross the boundary exactly as it went on the air.
        self._outbound.append(Emission(
            shard=self.shard_index, seq=self._emission_seq,
            sender=frame.sender, start=transmission.start,
            end=transmission.end, size_bytes=frame.size_bytes,
            data=encode_boundary_frame(frame)))
        self._emission_seq += 1
        return transmission

    def drain_outbound(self) -> list[Emission]:
        """Emissions captured since the last barrier (cleared on read)."""
        outbound, self._outbound = self._outbound, []
        return outbound

    # ------------------------------------------------------------ remote side
    def inject_remote(self, emission: Emission) -> Transmission:
        """Replay a remote transmission as a ghost starting now."""
        if emission.start != self.sim.now:
            raise ShardSyncError(
                f"ghost from shard {emission.shard} starts at "
                f"{emission.start} but the local clock is {self.sim.now}; "
                f"the horizon protocol must inject ghosts at their start time")
        frame = decode_boundary_frame(emission.data)
        ghost = Transmission(frame=frame, sender_mac=GhostMac(frame.sender),
                             start=emission.start, end=emission.end,
                             seq=frame.frame_id)
        # Symmetric collision computation: strict overlap on (start, end).
        for other in self._active:
            if other.end > ghost.start:
                other.collided = True
                ghost.collided = True
        self._active.append(ghost)
        self._busy_until = max(self._busy_until, ghost.end)
        self.sim.schedule_at(emission.end, lambda: self._finish(ghost),
                             label=f"ghost-end:{self.name}:{frame.frame_id}")
        return ghost

    def _finish(self, transmission: Transmission) -> None:
        if isinstance(transmission.sender_mac, GhostMac):
            self._active.remove(transmission)
            # The home shard records the collision and notifies the real
            # sender MAC; the ghost only delivers (or stays silent).
            if not transmission.collided:
                self._deliver(transmission)
            return
        super()._finish(transmission)


#: deterministic per-node backoff perturbation (seconds).  Two MACs in
#: different shards cannot carrier-sense each other at the *same instant*
#: (a ghost only arrives at the next barrier), so an exact slot tie would
#: always collide where the classic global heap lets the second sender
#: defer.  A node-unique picosecond offset makes exact ties impossible:
#: the later attempt now falls strictly inside the earlier transmission's
#: airtime and defers through the ordinary busy-sense path, restoring
#: classic carrier-sense semantics.  Keyed to the node id only, so it is
#: independent of the shard layout and worker count.
SLOT_TIE_BREAK_S = 1e-12


class ShardCsmaMac(CsmaMac):
    """A backbone CSMA MAC that exposes its next scheduled channel attempt.

    The attempt time is the exact instant this MAC could next call
    ``channel.transmit``; together with the ``next heap event + DIFS`` term
    it yields the shard's conservative bound.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.next_attempt_at: Optional[float] = None

    def _start_backoff(self) -> None:
        # Mirrors CsmaMac._start_backoff, additionally recording the attempt
        # time (the base class computes the delay internally, so this is the
        # one place the value is known before scheduling) and applying the
        # cross-shard slot tie-break.
        if not self._queue:
            self._state = "idle"
            return
        self._state = "backoff"
        self._backoff_started = self.sim.now
        slots = self.rng.randrange(self._contention_window)
        wait = max(0.0, self.channel.busy_until - self.sim.now)
        delay = wait + self.config.difs_s + slots * self.config.slot_s \
            + self.node_id * SLOT_TIE_BREAK_S
        self.next_attempt_at = self.sim.now + delay
        self.sim.schedule(delay, self._attempt,
                          label=f"csma-attempt:{self.node_id}")

    def _attempt(self) -> None:
        self.next_attempt_at = None
        super()._attempt()


# ---------------------------------------------------------------------------
# per-shard runner
# ---------------------------------------------------------------------------

class ShardRunner:
    """One shard's window protocol: inject ghosts, run, report.

    The runner is deliberately harness-agnostic: ``poll`` runs after every
    processed event (the multi-hop harness couples local decisions into the
    global domain there) and ``done`` reports the shard-local stop condition
    at barriers.  Subclasses add a ``finish()`` producing the final
    (picklable) shard report.
    """

    def __init__(self, shard_index: int, sim: Simulator,
                 backbone: Optional[ShardBackboneChannel],
                 backbone_macs: Sequence[ShardCsmaMac],
                 difs_s: float,
                 poll: Optional[Callable[[], None]] = None,
                 done: Optional[Callable[[], bool]] = None) -> None:
        if difs_s <= 0:
            raise ShardSyncError(
                f"conservative lookahead needs a positive DIFS, got {difs_s}; "
                f"with difs_s == 0 a fresh channel access has no minimum "
                f"deferral and every window degenerates to a single event")
        self.shard_index = shard_index
        self.sim = sim
        self.backbone = backbone
        self.backbone_macs = list(backbone_macs)
        self.difs_s = difs_s
        self.poll = poll
        self.done = done or (lambda: False)

    def inject(self, ghosts: Sequence[Emission]) -> None:
        """Schedule the barrier's remote transmissions at their start times."""
        backbone = self.backbone
        if ghosts and backbone is None:
            raise ShardSyncError(
                f"shard {self.shard_index} received ghosts but has no "
                f"backbone mirror")
        for emission in ghosts:
            self.sim.schedule_at(
                emission.start,
                lambda e=emission: backbone.inject_remote(e),
                label=f"shard-inject:{emission.shard}:{emission.seq}")

    def bound(self) -> float:
        """Earliest instant this shard could start a backbone transmission."""
        candidates = [mac.next_attempt_at for mac in self.backbone_macs
                      if mac.next_attempt_at is not None]
        next_event = self.sim.next_event_time()
        if next_event is not None:
            # Any fresh access chain starts at some queued event and then
            # defers by at least DIFS in _start_backoff.
            candidates.append(next_event + self.difs_s)
        return min(candidates) if candidates else math.inf

    def collect(self, processed: int) -> WindowResult:
        emissions = self.backbone.drain_outbound() if self.backbone else []
        return WindowResult(bound=self.bound(), emissions=emissions,
                            done=bool(self.done()), processed=processed)

    def step(self, until: float, ghosts: Sequence[Emission]) -> WindowResult:
        """Inject + run + collect: the worker-process form of one window."""
        self.inject(ghosts)
        processed = self.sim.run_window(until, poll=self.poll)
        return self.collect(processed)

    def finish(self) -> Any:  # pragma: no cover - subclasses report
        return None


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Lookahead:
    """The two scenario constants the horizon computation needs."""

    difs_s: float
    rx_turnaround_s: float


def next_horizon(bounds: Sequence[float], fresh: Sequence[Emission],
                 lookahead: Lookahead, timeout_s: float) -> float:
    """The next safe horizon given every shard's bound and the barrier's
    freshly exchanged emissions.

    A fresh emission is not yet in any receiving shard's heap, so its
    earliest receiver-side consequence -- a delivery no sooner than
    ``end + rx_turnaround`` followed by at least a DIFS deferral -- caps the
    horizon for exactly one round (after that the ghost's events are queued
    and covered by the shard bounds).
    """
    candidates = list(bounds)
    for emission in fresh:
        candidates.append(emission.end + lookahead.rx_turnaround_s
                          + lookahead.difs_s)
    horizon = min(candidates) if candidates else math.inf
    return min(horizon, timeout_s)


def _sorted_emissions(results: Sequence[WindowResult]) -> list[Emission]:
    merged = [emission for result in results for emission in result.emissions]
    merged.sort(key=lambda e: (e.start, e.shard, e.seq))
    return merged


def _route(emissions: Sequence[Emission], shard: int) -> list[Emission]:
    return [emission for emission in emissions if emission.shard != shard]


@dataclass
class _InProcessPool:
    """Drives every shard in this process (``workers <= 1``).

    Emissions still round-trip through the boundary codec (encode at
    transmit, decode at injection), so a one-worker run is bit-identical to
    any multi-worker run by construction, not by luck.
    """

    runners: list[ShardRunner]
    sharded_sim: ShardedSimulator = field(init=False)

    def __post_init__(self) -> None:
        self.sharded_sim = ShardedSimulator([r.sim for r in self.runners])

    def step(self, until: float,
             ghosts: dict[int, list[Emission]]) -> list[WindowResult]:
        for runner in self.runners:
            runner.inject(ghosts.get(runner.shard_index, ()))
        processed = self.sharded_sim.run_window(
            until, polls=[runner.poll for runner in self.runners])
        return [runner.collect(count)
                for runner, count in zip(self.runners, processed)]

    def finish(self) -> list[Any]:
        return [runner.finish() for runner in self.runners]

    def close(self) -> None:
        return None


def _worker_main(conn: Any, factory: Callable[[int], ShardRunner],
                 shard_indices: Sequence[int]) -> None:
    """Entry point of one worker process: build shards, serve barriers."""
    try:
        runners = [factory(index) for index in shard_indices]
        conn.send(("ready", None))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "step":
                _kind, until, ghosts = message
                results = [runner.step(until, ghosts.get(runner.shard_index, ()))
                           for runner in runners]
                conn.send(("ok", results))
            elif kind == "finish":
                conn.send(("ok", [runner.finish() for runner in runners]))
            else:
                break
    except BaseException as exc:  # surface the full failure in the parent
        import traceback
        try:
            conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
        except Exception:
            pass
    finally:
        conn.close()


class _ForkedPool:
    """Drives shards across forked worker processes over pipes."""

    def __init__(self, factory: Callable[[int], ShardRunner],
                 num_shards: int, workers: int) -> None:
        context = multiprocessing.get_context("fork")
        # Contiguous blocks keep neighbouring clusters on one worker.
        base, extra = divmod(num_shards, workers)
        assignments, cursor = [], 0
        for w in range(workers):
            size = base + (1 if w < extra else 0)
            assignments.append(list(range(cursor, cursor + size)))
            cursor += size
        self._pipes = []
        self._processes = []
        self.assignments = assignments
        for indices in assignments:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_conn, factory, indices),
                daemon=True)
            process.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._processes.append(process)
        for conn in self._pipes:
            self._expect(conn, "ready")

    @staticmethod
    def _expect(conn: Any, kind: str) -> Any:
        status, payload = conn.recv()
        if status == "error":
            raise ShardSyncError(f"shard worker failed:\n{payload}")
        if kind == "ready":
            return payload
        return payload

    def _collect(self) -> list[list[Any]]:
        replies = []
        for conn in self._pipes:
            status, payload = conn.recv()
            if status == "error":
                raise ShardSyncError(f"shard worker failed:\n{payload}")
            replies.append(payload)
        return replies

    def _ordered(self, replies: Sequence[Sequence[Any]]) -> list[Any]:
        by_shard: dict[int, Any] = {}
        for indices, reply in zip(self.assignments, replies):
            for index, item in zip(indices, reply):
                by_shard[index] = item
        return [by_shard[index] for index in sorted(by_shard)]

    def step(self, until: float,
             ghosts: dict[int, list[Emission]]) -> list[WindowResult]:
        for conn, indices in zip(self._pipes, self.assignments):
            conn.send(("step", until,
                       {index: ghosts.get(index, []) for index in indices}))
        return self._ordered(self._collect())

    def finish(self) -> list[Any]:
        for conn in self._pipes:
            conn.send(("finish",))
        return self._ordered(self._collect())

    def close(self) -> None:
        for conn in self._pipes:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()


def fork_available() -> bool:
    """True when the platform supports fork-based shard workers."""
    return "fork" in multiprocessing.get_all_start_methods()


def run_conservative(factory: Callable[[int], ShardRunner], num_shards: int,
                     lookahead: Lookahead, timeout_s: float,
                     workers: int = 1) -> tuple[bool, float, list[Any]]:
    """Run every shard to completion under conservative synchronization.

    ``factory(shard_index)`` builds one shard's runner; with ``workers > 1``
    it is invoked inside forked worker processes (shard state never leaves
    its process).  Returns ``(decided, stop_time, finals)`` where ``finals``
    is each runner's ``finish()`` report in shard order.  The barrier
    sequence -- and therefore every shard-local execution -- is independent
    of ``workers``.
    """
    if num_shards < 1:
        raise ShardSyncError("need at least one shard")
    workers = max(1, min(workers, num_shards))
    if workers > 1 and not fork_available():  # pragma: no cover - linux CI
        workers = 1
    if workers > 1:
        pool: Any = _ForkedPool(factory, num_shards, workers)
    else:
        pool = _InProcessPool([factory(index) for index in range(num_shards)])
    try:
        # Window 0 runs the time-zero cascade.  It needs no prior bound
        # exchange: a backbone access can only follow a _start_backoff, whose
        # minimum DIFS deferral puts the earliest possible transmission
        # strictly after t=0.
        horizon = 0.0
        results = pool.step(horizon, {})
        decided = all(result.done for result in results)
        while not decided and horizon < timeout_s:
            fresh = _sorted_emissions(results)
            bounds = [result.bound for result in results]
            target = next_horizon(bounds, fresh, lookahead, timeout_s)
            if target <= horizon and target < timeout_s:
                raise ShardSyncError(
                    f"horizon stalled at {horizon} (next target {target}); "
                    f"a shard promised an already-elapsed bound")
            ghosts = {index: _route(fresh, index) for index in range(num_shards)}
            results = pool.step(target, ghosts)
            horizon = target
            decided = all(result.done for result in results)
        finals = pool.finish()
        return decided, horizon, finals
    finally:
        pool.close()
