"""Network topologies: single-hop and clustered multi-hop (Section III-A / V-B).

A single-hop network has ``N = 3f + 1`` nodes sharing one channel.  A
multi-hop network is divided into ``M`` clusters, each a single-hop network
with ``N_i = 3f_i + 1`` nodes and its own channel; clusters communicate over a
routed backbone (modelled as a separate "global" channel whose per-pair hop
counts come from :mod:`repro.net.routing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class TopologyError(ValueError):
    """Raised for invalid topology specifications."""


def faults_tolerated(num_nodes: int) -> int:
    """Maximum Byzantine faults ``f`` for ``num_nodes = 3f + 1`` (floor)."""
    if num_nodes < 1:
        raise TopologyError(f"need at least one node, got {num_nodes}")
    return (num_nodes - 1) // 3


@dataclass(frozen=True)
class Cluster:
    """One single-hop cluster of a (possibly multi-hop) network."""

    index: int
    node_ids: tuple[int, ...]
    channel_name: str

    @property
    def size(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.node_ids)

    @property
    def faults_tolerated(self) -> int:
        """Byzantine faults tolerated inside the cluster."""
        return faults_tolerated(self.size)


@dataclass(frozen=True)
class Topology:
    """Base description of a deployment: clusters plus an optional backbone."""

    clusters: tuple[Cluster, ...]
    global_channel_name: Optional[str] = None
    #: adjacency between clusters (pairs of cluster indices); empty means a chain
    cluster_links: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return sum(cluster.size for cluster in self.clusters)

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    @property
    def is_multi_hop(self) -> bool:
        """True when the topology has more than one cluster."""
        return len(self.clusters) > 1

    def all_node_ids(self) -> list[int]:
        """Every node id in the deployment."""
        return [node_id for cluster in self.clusters for node_id in cluster.node_ids]

    def cluster_of(self, node_id: int) -> Cluster:
        """The cluster containing ``node_id``.

        O(1) after the first call: the node -> cluster map is built lazily
        and memoised on the instance (the dataclass is frozen, so the cache
        is attached via ``object.__setattr__``).  The linear scan this
        replaces made ``hop_table_for`` quadratic-times-n in large multi-hop
        deployments.
        """
        index = getattr(self, "_cluster_index", None)
        if index is None:
            index = {node_id: cluster
                     for cluster in self.clusters
                     for node_id in cluster.node_ids}
            object.__setattr__(self, "_cluster_index", index)
        try:
            return index[node_id]
        except KeyError:
            raise TopologyError(
                f"node {node_id} is not part of this topology") from None


class SingleHopTopology(Topology):
    """All ``num_nodes`` nodes share one channel."""

    def __new__(cls, num_nodes: int, channel_name: str = "ch0") -> "SingleHopTopology":
        if num_nodes < 4:
            raise TopologyError(
                f"BFT consensus needs at least 4 nodes (3f+1), got {num_nodes}")
        cluster = Cluster(index=0, node_ids=tuple(range(num_nodes)),
                          channel_name=channel_name)
        instance = super().__new__(cls)
        Topology.__init__(instance, clusters=(cluster,), global_channel_name=None)
        return instance

    def __init__(self, num_nodes: int, channel_name: str = "ch0") -> None:
        # __new__ already initialised the frozen dataclass fields.
        pass

    @property
    def faults_tolerated(self) -> int:
        """Byzantine faults tolerated in the (only) cluster."""
        return self.clusters[0].faults_tolerated


class MultiHopTopology(Topology):
    """A clustered multi-hop network (Fig. 8 of the paper).

    ``cluster_sizes`` gives the number of nodes per cluster; node ids are
    assigned sequentially cluster by cluster.  ``cluster_links`` describes the
    backbone adjacency between clusters; if omitted, clusters form a ring,
    matching the four-cluster layout of Fig. 8.
    """

    def __new__(cls, cluster_sizes: Iterable[int],
                cluster_links: Optional[Iterable[tuple[int, int]]] = None,
                global_channel_name: str = "backbone") -> "MultiHopTopology":
        sizes = list(cluster_sizes)
        if not sizes:
            raise TopologyError("need at least one cluster")
        for size in sizes:
            if size < 4:
                raise TopologyError(
                    f"every cluster needs at least 4 nodes (3f+1), got {size}")
        clusters = []
        next_id = 0
        for index, size in enumerate(sizes):
            node_ids = tuple(range(next_id, next_id + size))
            clusters.append(Cluster(index=index, node_ids=node_ids,
                                    channel_name=f"cluster{index}"))
            next_id += size
        if cluster_links is None:
            count = len(sizes)
            links = tuple((i, (i + 1) % count) for i in range(count)) if count > 1 else ()
        else:
            links = tuple(tuple(sorted(link)) for link in cluster_links)
        instance = super().__new__(cls)
        Topology.__init__(instance, clusters=tuple(clusters),
                          global_channel_name=global_channel_name,
                          cluster_links=links)
        return instance

    def __init__(self, cluster_sizes: Iterable[int],
                 cluster_links: Optional[Iterable[tuple[int, int]]] = None,
                 global_channel_name: str = "backbone") -> None:
        pass
