"""The asynchronous adversary: delays, reordering and Byzantine node control.

Section III-A of the paper adopts the standard asynchronous model: message
delays between nodes are unbounded (but honest-to-honest messages are
eventually delivered), the adversary may reorder deliveries, and up to ``f``
of the ``N = 3f + 1`` nodes are Byzantine.

In the simulator the adversary manifests in two places:

* the :class:`DelayModel` adds per-link delivery delays (random jitter plus
  targeted extra delay on chosen sender/receiver pairs), which exercises the
  protocols' timing-assumption-free design; and
* the :class:`AsyncAdversary` records which nodes are Byzantine; their
  *behaviour* (silence, equivocation, adversarial votes) is implemented by
  the strategies in :mod:`repro.testbed.byzantine` and plugged into the
  protocol layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class DelayModel:
    """Per-link delivery delay model.

    ``base_jitter_s`` is the mean of an exponential jitter applied to every
    delivery; ``targeted`` maps ``(sender, receiver)`` pairs to an extra fixed
    delay (the adversary "arbitrarily prolonging the delay between messages of
    two nodes"); ``max_delay_s`` caps the total so honest messages are
    eventually delivered, as the model requires.
    """

    base_jitter_s: float = 0.005
    targeted: dict[tuple[int, int], float] = field(default_factory=dict)
    max_delay_s: float = 30.0

    def delay(self, sender: int, receiver: int, rng) -> float:
        """Extra delivery delay for one frame on the (sender, receiver) link."""
        jitter = rng.expovariate(1.0 / self.base_jitter_s) if self.base_jitter_s > 0 else 0.0
        extra = self.targeted.get((sender, receiver), 0.0)
        return min(jitter + extra, self.max_delay_s)


class AsyncAdversary:
    """Tracks the Byzantine node set and owns the delivery-delay model."""

    def __init__(self, byzantine: Optional[set[int]] = None,
                 delay_model: Optional[DelayModel] = None) -> None:
        self.byzantine: set[int] = set(byzantine or set())
        self.delay_model = delay_model or DelayModel()

    def is_byzantine(self, node_id: int) -> bool:
        """True if ``node_id`` is under adversarial control."""
        return node_id in self.byzantine

    def corrupt(self, node_id: int) -> None:
        """Add a node to the Byzantine set."""
        self.byzantine.add(node_id)

    def delivery_delay(self, sender: int, receiver: int, rng) -> float:
        """Delay added to one frame delivery (called by the channel)."""
        return self.delay_model.delay(sender, receiver, rng)

    def target_link(self, sender: int, receiver: int, extra_delay_s: float) -> None:
        """Make the adversary slow down a specific link."""
        self.delay_model.targeted[(sender, receiver)] = extra_delay_s

    def num_byzantine(self) -> int:
        """Size of the Byzantine set."""
        return len(self.byzantine)
