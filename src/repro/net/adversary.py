"""The asynchronous adversary: delays, reordering and Byzantine node control.

Section III-A of the paper adopts the standard asynchronous model: message
delays between nodes are unbounded (but honest-to-honest messages are
eventually delivered), the adversary may reorder deliveries, and up to ``f``
of the ``N = 3f + 1`` nodes are Byzantine.

In the simulator the adversary manifests in three places:

* the :class:`DelayModel` adds per-link delivery delays (random jitter plus
  targeted extra delay on chosen sender/receiver pairs), which exercises the
  protocols' timing-assumption-free design;
* :class:`LinkFaultSpec` / :class:`PartitionSpec` describe message-level
  attacks within the asynchronous model -- targeted drop, duplication,
  reordering and (transient) link partitions -- applied by the channel through
  :meth:`AsyncAdversary.plan_delivery`; and
* the :class:`AsyncAdversary` records which nodes are Byzantine; their
  *behaviour* (silence, equivocation, adversarial votes) is implemented by
  the strategies in :mod:`repro.testbed.byzantine` and plugged into the
  protocol layer.

Dropped frames are indistinguishable from unbounded delay from the protocols'
point of view, so they are only admissible on links the retransmission layer
repairs (NACK resends) or for a bounded window (a healing partition);
permanent total silence of an honest link would violate eventual delivery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class DelayModel:
    """Per-link delivery delay model.

    ``base_jitter_s`` is the mean of an exponential jitter applied to every
    delivery; ``targeted`` maps ``(sender, receiver)`` pairs to an extra fixed
    delay (the adversary "arbitrarily prolonging the delay between messages of
    two nodes"); ``base_extra_s`` is a fixed delay added to *every* link (a
    scenario-phase latency override -- satellite hops, congestion -- mutated
    mid-run by the :class:`~repro.testbed.scenario_packs.ScenarioController`);
    ``max_delay_s`` caps the total so honest messages are eventually
    delivered, as the model requires.
    """

    base_jitter_s: float = 0.005
    targeted: dict[tuple[int, int], float] = field(default_factory=dict)
    base_extra_s: float = 0.0
    max_delay_s: float = 30.0

    def delay(self, sender: int, receiver: int, rng) -> float:
        """Extra delivery delay for one frame on the (sender, receiver) link."""
        jitter = rng.expovariate(1.0 / self.base_jitter_s) if self.base_jitter_s > 0 else 0.0
        extra = self.targeted.get((sender, receiver), 0.0)
        return min(jitter + extra + self.base_extra_s, self.max_delay_s)


@dataclass(frozen=True)
class LinkFaultSpec:
    """Message-level faults on a set of links, active over a time window.

    Each delivery on a matching link is independently dropped with
    ``drop_rate``, delivered twice with ``duplicate_rate`` (the duplicate gets
    its own extra delay, exercising at-most-once handling), and delayed by an
    extra uniform jitter up to ``reorder_jitter_s`` (large enough jitter
    reorders deliveries relative to the send order).

    ``senders`` / ``receivers`` restrict the affected links (``None`` matches
    every node); ``start_s`` / ``end_s`` bound the active window in virtual
    time (``end_s=None`` means forever).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_jitter_s: float = 0.0
    senders: Optional[frozenset[int]] = None
    receivers: Optional[frozenset[int]] = None
    start_s: float = 0.0
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.reorder_jitter_s < 0:
            raise ValueError(
                f"reorder_jitter_s must be >= 0, got {self.reorder_jitter_s}")
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ValueError(
                f"end_s must be > start_s ({self.start_s}), got {self.end_s}")

    def applies(self, sender: int, receiver: int, now: float) -> bool:
        """True if this fault is active for a delivery on the link right now."""
        if now < self.start_s:
            return False
        if self.end_s is not None and now >= self.end_s:
            return False
        if self.senders is not None and sender not in self.senders:
            return False
        if self.receivers is not None and receiver not in self.receivers:
            return False
        return True


@dataclass(frozen=True)
class PartitionSpec:
    """A (transient) network partition.

    While active, a frame whose sender and receiver sit in *different* groups
    is dropped.  Nodes not listed in any group are unaffected (this lets a
    multi-hop campaign partition the leader backbone without touching the
    cluster channels).  ``heal_s=None`` keeps the partition forever -- only
    admissible in runs that assert *non*-decision, since it violates eventual
    delivery.
    """

    groups: tuple[frozenset[int], ...]
    start_s: float = 0.0
    heal_s: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set[int] = set()
        for index, group in enumerate(self.groups):
            if not group:
                raise ValueError(f"groups[{index}] is empty; every partition "
                                 f"group needs at least one node")
            overlap = seen & group
            if overlap:
                raise ValueError(f"partition groups overlap on nodes {sorted(overlap)}")
            seen |= group
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if self.heal_s is not None and self.heal_s <= self.start_s:
            raise ValueError(
                f"heal_s must be > start_s ({self.start_s}), got {self.heal_s}")

    def group_of(self, node_id: int) -> Optional[int]:
        """Index of the group containing ``node_id`` (None if unlisted)."""
        for index, group in enumerate(self.groups):
            if node_id in group:
                return index
        return None

    def separates(self, sender: int, receiver: int, now: float) -> bool:
        """True if the partition blocks sender -> receiver delivery now."""
        return self.opinion(sender, receiver, now) is True

    def opinion(self, sender: int, receiver: int,
                now: float) -> Optional[bool]:
        """This partition's verdict on the link, or None if it abstains.

        A partition only has an opinion while active *and* when both
        endpoints are listed in one of its groups: ``True`` means the link is
        cut (different groups), ``False`` means the partition explicitly
        keeps the link up (same group).  Abstention is what lets the
        precedence rule in :meth:`AsyncAdversary.plan_delivery` compose
        overlapping partitions deterministically.
        """
        if now < self.start_s:
            return None
        if self.heal_s is not None and now >= self.heal_s:
            return None
        sender_group = self.group_of(sender)
        receiver_group = self.group_of(receiver)
        if sender_group is None or receiver_group is None:
            return None
        return sender_group != receiver_group


class AsyncAdversary:
    """Tracks the Byzantine node set and owns the message-level fault models."""

    def __init__(self, byzantine: Optional[set[int]] = None,
                 delay_model: Optional[DelayModel] = None,
                 link_faults: Optional[list[LinkFaultSpec]] = None,
                 partitions: Optional[list[PartitionSpec]] = None) -> None:
        self.byzantine: set[int] = set(byzantine or set())
        self.delay_model = delay_model or DelayModel()
        self.link_faults: list[LinkFaultSpec] = list(link_faults or [])
        self.partitions: list[PartitionSpec] = list(partitions or [])

    def is_byzantine(self, node_id: int) -> bool:
        """True if ``node_id`` is under adversarial control."""
        return node_id in self.byzantine

    def corrupt(self, node_id: int) -> None:
        """Add a node to the Byzantine set."""
        self.byzantine.add(node_id)

    def add_link_fault(self, fault: LinkFaultSpec) -> None:
        """Install a message-level link fault (mid-run installs are safe:
        no RNG is drawn until the fault actually matches a delivery)."""
        self.link_faults.append(fault)

    def add_partition(self, partition: PartitionSpec) -> None:
        """Install a (transient) partition."""
        self.partitions.append(partition)

    def remove_link_fault(self, fault: LinkFaultSpec) -> None:
        """Retire an installed link fault (raises ValueError if absent).

        Removal never perturbs the fault-free RNG stream -- an inactive
        fault draws nothing -- so a scenario controller can install and
        retire faults at phase boundaries without breaking bit-identity of
        the surrounding deliveries.
        """
        self.link_faults.remove(fault)

    def remove_partition(self, partition: PartitionSpec) -> None:
        """Retire an installed partition (raises ValueError if absent)."""
        self.partitions.remove(partition)

    def delivery_delay(self, sender: int, receiver: int, rng) -> float:
        """Delay added to one frame delivery (jitter + targeted only)."""
        return self.delay_model.delay(sender, receiver, rng)

    def plan_delivery(self, sender: int, receiver: int, now: float,
                      rng) -> list[float]:
        """Decide the fate of one frame on the (sender, receiver) link.

        Returns the list of extra delivery delays, one per copy that should
        arrive: ``[]`` means the frame is dropped (the channel records the
        drop in its trace), one entry is a normal delivery, two entries a
        duplication.  All randomness is drawn from the caller-supplied
        (simulator) RNG, and no draws happen unless a fault actually matches
        the link, so fault-free runs keep a bit-identical RNG stream.

        When several active partitions cover both endpoints, precedence is
        deterministic and independent of install order *except* as a
        tie-break: the covering partition with the latest ``start_s`` decides
        the link (ties go to the most recently installed).  Partitions that
        abstain -- inactive, or not listing both endpoints -- never override
        one that has an opinion.  This is what makes layered scenario phases
        well-defined: a later phase's partition supersedes an earlier one it
        overlaps with instead of the two OR-ing into a surprise cut.
        """
        opinion: Optional[bool] = None
        opinion_start = -math.inf
        for partition in self.partitions:
            verdict = partition.opinion(sender, receiver, now)
            if verdict is None:
                continue
            if partition.start_s >= opinion_start:
                opinion_start = partition.start_s
                opinion = verdict
        if opinion:
            return []
        delays = [self.delay_model.delay(sender, receiver, rng)]
        for fault in self.link_faults:
            if not fault.applies(sender, receiver, now):
                continue
            if fault.drop_rate > 0.0 and rng.random() < fault.drop_rate:
                return []
            if fault.reorder_jitter_s > 0.0:
                cap = self.delay_model.max_delay_s
                delays = [min(delay + rng.uniform(0.0, fault.reorder_jitter_s), cap)
                          for delay in delays]
            if fault.duplicate_rate > 0.0 and rng.random() < fault.duplicate_rate:
                delays.append(min(delays[0] + rng.uniform(0.0, max(
                    fault.reorder_jitter_s, self.delay_model.base_jitter_s)),
                    self.delay_model.max_delay_s))
        return delays

    def eventual_delivery_holds(self) -> bool:
        """True if no installed fault can silence a link forever.

        Permanent partitions and drop-rate-1.0 faults without an end time
        violate the asynchronous model's eventual-delivery guarantee; campaign
        fault models that use them must pair them with a non-decision
        expectation.
        """
        for partition in self.partitions:
            if partition.heal_s is None or math.isinf(partition.heal_s):
                return False
        for fault in self.link_faults:
            if fault.drop_rate >= 1.0 and (fault.end_s is None
                                           or math.isinf(fault.end_s)):
                return False
        return True

    def target_link(self, sender: int, receiver: int, extra_delay_s: float) -> None:
        """Make the adversary slow down a specific link."""
        self.delay_model.targeted[(sender, receiver)] = extra_delay_s

    def num_byzantine(self) -> int:
        """Size of the Byzantine set."""
        return len(self.byzantine)
