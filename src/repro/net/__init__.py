"""Wireless network substrate for asynchronous BFT consensus.

The paper evaluates consensus on STM32F767 boards with LoRa radios; this
package provides the simulated equivalent: a deterministic discrete-event
simulator with

* a shared, half-duplex broadcast channel with collisions (:mod:`~repro.net.channel`),
* a CSMA/CA medium access layer (:mod:`~repro.net.csma`),
* a radio airtime model parameterised by bitrate (:mod:`~repro.net.radio`),
* a node runtime with a CPU busy-time model so cryptographic computation
  delays flow into consensus latency (:mod:`~repro.net.node`),
* NACK / ACK reliability mechanisms (:mod:`~repro.net.reliability`),
* single-hop and clustered multi-hop topologies plus inter-cluster routing
  (:mod:`~repro.net.topology`, :mod:`~repro.net.routing`),
* an asynchronous adversary able to delay and reorder messages and to control
  up to ``f`` Byzantine nodes (:mod:`~repro.net.adversary`), and
* per-run statistics: channel accesses, airtime, collisions, message and byte
  counts (:mod:`~repro.net.trace`).
"""

from repro.net.sim import Simulator, Event, Timer
from repro.net.radio import RadioConfig, LORA_SF7_125KHZ, LORA_FAST, WIFI_LIKE
from repro.net.channel import WirelessChannel, Transmission
from repro.net.csma import CsmaMac, CsmaConfig
from repro.net.node import NetworkNode, CpuConfig
from repro.net.topology import Topology, SingleHopTopology, MultiHopTopology, Cluster
from repro.net.trace import NetworkTrace, ChannelStats
from repro.net.adversary import AsyncAdversary, DelayModel
from repro.net.reliability import NackState, AckState, ReliabilityMode
from repro.net.wired import WiredNetworkModel

__all__ = [
    "Simulator",
    "Event",
    "Timer",
    "RadioConfig",
    "LORA_SF7_125KHZ",
    "LORA_FAST",
    "WIFI_LIKE",
    "WirelessChannel",
    "Transmission",
    "CsmaMac",
    "CsmaConfig",
    "NetworkNode",
    "CpuConfig",
    "Topology",
    "SingleHopTopology",
    "MultiHopTopology",
    "Cluster",
    "NetworkTrace",
    "ChannelStats",
    "AsyncAdversary",
    "DelayModel",
    "NackState",
    "AckState",
    "ReliabilityMode",
    "WiredNetworkModel",
]
