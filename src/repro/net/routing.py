"""Inter-cluster routing for multi-hop deployments.

In the paper's multi-hop architecture (Section V-B), local consensus runs
inside each cluster on its own channel and a changeable cluster leader from
each cluster joins a *global* consensus.  Global-consensus traffic crosses the
backbone and is forwarded by relays, so each leader-to-leader delivery pays a
per-hop forwarding cost.  Existing Byzantine-fault-tolerant routing protocols
are assumed (the paper cites BSMR and ODSBR); the routing layer here therefore
only has to provide hop counts, not defend against routing attacks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

from repro.net.topology import Topology, TopologyError


@dataclass(frozen=True)
class RouteInfo:
    """Hop count between two clusters over the backbone."""

    source_cluster: int
    target_cluster: int
    hops: int


class InterClusterRouting:
    """Shortest-path hop counts between clusters of a multi-hop topology."""

    def __init__(self, topology: Topology) -> None:
        if not topology.is_multi_hop:
            raise TopologyError("routing is only meaningful for multi-hop topologies")
        self.topology = topology
        self._adjacency: dict[int, set[int]] = {
            cluster.index: set() for cluster in topology.clusters}
        for a, b in topology.cluster_links:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._check_connected()
        self._hops = self._all_pairs_hops()

    def _check_connected(self) -> None:
        """Fail fast on a partitioned backbone.

        A disconnected cluster graph used to surface only as a late
        ``TopologyError`` from :meth:`cluster_hops` once the first
        cross-component delivery was attempted mid-run; detecting it at
        construction names the disconnected components while the topology is
        still being assembled.
        """
        components: list[list[int]] = []
        unvisited = set(self._adjacency)
        while unvisited:
            start = min(unvisited)
            component = {start}
            frontier = deque([start])
            while frontier:
                current = frontier.popleft()
                for neighbour in self._adjacency[current]:
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            unvisited -= component
            components.append(sorted(component))
        if len(components) > 1:
            described = ", ".join(
                "{" + ", ".join(str(index) for index in component) + "}"
                for component in components)
            raise TopologyError(
                f"backbone cluster graph is disconnected: "
                f"{len(components)} components {described}; every cluster "
                f"pair needs a backbone route for global consensus")

    def _all_pairs_hops(self) -> dict[tuple[int, int], int]:
        hops: dict[tuple[int, int], int] = {}
        for source in self._adjacency:
            distances = {source: 0}
            frontier = deque([source])
            while frontier:
                current = frontier.popleft()
                for neighbour in self._adjacency[current]:
                    if neighbour not in distances:
                        distances[neighbour] = distances[current] + 1
                        frontier.append(neighbour)
            for target, distance in distances.items():
                hops[(source, target)] = max(distance, 1) if source != target else 0
        return hops

    def cluster_hops(self, source_cluster: int, target_cluster: int) -> int:
        """Backbone hops between two clusters (0 for the same cluster)."""
        if source_cluster == target_cluster:
            return 0
        try:
            return self._hops[(source_cluster, target_cluster)]
        except KeyError as exc:
            raise TopologyError(
                f"clusters {source_cluster} and {target_cluster} are not connected"
            ) from exc

    def node_hops(self, source_node: int, target_node: int) -> int:
        """Backbone hops between the clusters of two nodes."""
        source = self.topology.cluster_of(source_node).index
        target = self.topology.cluster_of(target_node).index
        return self.cluster_hops(source, target)

    def hop_table_for(self, node_ids: list[int]) -> Mapping[tuple[int, int], int]:
        """Per-pair hop counts for a set of nodes (e.g. the cluster leaders).

        The returned table is installed into the backbone channel so that each
        delivery between leaders pays ``(hops - 1)`` forwarding delays.
        """
        table: dict[tuple[int, int], int] = {}
        for source in node_ids:
            for target in node_ids:
                if source == target:
                    continue
                table[(source, target)] = max(1, self.node_hops(source, target))
        return table
