"""The shared wireless broadcast channel.

Nodes in a (single-hop) wireless network share one channel: a frame put on
the air by one node is received by every other node in range, *unless* it
overlaps with another transmission (collision) or the receiver was itself
transmitting (half-duplex).  This is the property ConsensusBatcher exploits
(one transmission serves all N receivers) and the property that makes N
parallel consensus components expensive (N times the channel contention).
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING  # noqa: F401

from repro.net.radio import RadioConfig
from repro.net.sim import Simulator
from repro.net.trace import NetworkTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.adversary import AsyncAdversary


@dataclass
class Frame:
    """A physical-layer frame: an opaque payload with a declared size.

    When ``builder`` is set, the payload and size are *materialised at
    channel-access time*: the MAC calls the builder right before transmitting
    so the frame carries the freshest batched content (this is how
    ConsensusBatcher merges the updates that accumulated while the node was
    waiting for the channel).  A builder returning ``None`` cancels the frame.
    """

    sender: int
    payload: Any
    size_bytes: int
    channel: str = ""
    frame_id: int = 0
    builder: Optional[Callable[[], Optional[tuple[Any, int]]]] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes}")


@dataclass
class Transmission:
    """An in-flight frame occupying the channel from ``start`` to ``end``."""

    frame: Frame
    sender_mac: Any
    start: float
    end: float
    collided: bool = False
    extra_hop_delay: float = 0.0
    seq: int = field(default=0)


class WirelessChannel:
    """A single shared broadcast channel with collisions and half-duplex loss.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    radio:
        PHY parameters (bitrate, preamble, fragmentation).
    trace:
        Statistics collector.
    name:
        Channel name (multi-hop scenarios run one channel per cluster plus a
        global channel).
    adversary:
        Optional asynchronous adversary adding per-link delivery delays and
        reordering (the asynchronous network model of Section III-A).
    per_hop_forward_s:
        Extra delivery delay per routed hop beyond the first; used by the
        multi-hop backbone channel where frames are forwarded by relays.
    """

    def __init__(self, sim: Simulator, radio: RadioConfig, trace: NetworkTrace,
                 name: str = "ch0",
                 adversary: Optional["AsyncAdversary"] = None,
                 per_hop_forward_s: float = 0.0) -> None:
        self.sim = sim
        self.radio = radio
        self.trace = trace
        self.name = name
        self.adversary = adversary
        self.per_hop_forward_s = per_hop_forward_s
        self._macs: list[Any] = []
        self._active: list[Transmission] = []
        self._busy_until = 0.0
        self._frame_seq = itertools.count(1)
        #: optional per-pair hop counts set by the routing layer
        self.hop_counts: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------- membership
    def attach(self, mac: Any) -> None:
        """Attach a node's MAC to this channel."""
        self._macs.append(mac)

    @property
    def members(self) -> list[int]:
        """Node ids attached to the channel."""
        return [mac.node_id for mac in self._macs]

    # ------------------------------------------------------------ carrier sense
    @property
    def busy_until(self) -> float:
        """Virtual time until which the channel is sensed busy."""
        return self._busy_until

    def is_busy(self) -> bool:
        """True if a transmission is currently on the air."""
        return self.sim.now < self._busy_until

    # --------------------------------------------------------------- transmit
    def transmit(self, sender_mac: Any, frame: Frame) -> Transmission:
        """Put ``frame`` on the air starting now; returns the transmission."""
        airtime = self.radio.airtime(frame.size_bytes)
        start = self.sim.now
        end = start + airtime
        frame.channel = self.name
        frame.frame_id = next(self._frame_seq)
        transmission = Transmission(frame=frame, sender_mac=sender_mac,
                                    start=start, end=end, seq=frame.frame_id)
        # Any overlap with an in-flight transmission destroys both: the
        # conservative no-capture collision model.
        for other in self._active:
            if other.end > start:
                other.collided = True
                transmission.collided = True
        self._active.append(transmission)
        self._busy_until = max(self._busy_until, end)
        self.trace.record_transmission(self.name, frame.size_bytes, airtime)
        fragments = self.radio.fragments(frame.size_bytes)
        self.trace.record_channel_access(frame.sender, fragments, frame.size_bytes)
        self.sim.schedule(airtime, lambda: self._finish(transmission),
                          label=f"tx-end:{self.name}:{frame.frame_id}")
        return transmission

    # ----------------------------------------------------------------- finish
    def _finish(self, transmission: Transmission) -> None:
        self._active.remove(transmission)
        frame = transmission.frame
        sender_mac = transmission.sender_mac
        if transmission.collided:
            self.trace.record_collision(self.name)
            sender_mac.on_transmit_done(frame, collided=True)
            return
        self._deliver(transmission)
        sender_mac.on_transmit_done(frame, collided=False)

    def _deliver(self, transmission: Transmission) -> None:
        """Deliver an uncollided transmission to every attached receiver.

        Split out of :meth:`_finish` so the sharded backbone mirror
        (:mod:`repro.net.shard`) can deliver remote *ghost* transmissions --
        which have no locally attached sender -- through exactly the same
        half-duplex / hop-delay / adversary pipeline.
        """
        frame = transmission.frame
        sender_mac = transmission.sender_mac
        for mac in self._macs:
            if mac is sender_mac:
                continue
            # Half-duplex: a node that transmitted at any point during this
            # frame's airtime cannot have received it.
            if mac.was_transmitting_during(transmission.start, transmission.end):
                self.trace.record_half_duplex_miss(self.name)
                continue
            delay = self.radio.rx_turnaround_s
            if self.per_hop_forward_s > 0.0:
                hops = self.hop_counts.get((frame.sender, mac.node_id), 1)
                delay += max(0, hops - 1) * self.per_hop_forward_s
            if self.adversary is not None:
                # The adversary decides the fate of this link's copy: one
                # delay (normal), several (duplication) or none (drop --
                # a partition or lossy link the reliability layer must mend).
                extras = self.adversary.plan_delivery(
                    frame.sender, mac.node_id, self.sim.now, self.sim.rng)
                if not extras:
                    self.trace.record_adversary_drop(self.name)
                    continue
                for extra in extras:
                    self.trace.record_delivery(self.name)
                    self.sim.schedule(delay + extra,
                                      lambda m=mac: m.node.deliver_frame(frame),
                                      label=f"rx:{self.name}:{frame.frame_id}")
                continue
            self.trace.record_delivery(self.name)
            self.sim.schedule(delay, lambda m=mac: m.node.deliver_frame(frame),
                              label=f"rx:{self.name}:{frame.frame_id}")


# ---------------------------------------------------------------------------
# shard-boundary frame codec
# ---------------------------------------------------------------------------

class BoundaryCodecError(ValueError):
    """Raised when a frame cannot cross a shard boundary."""


def encode_boundary_frame(frame: Frame) -> bytes:
    """Serialize a frame for transport across a shard boundary.

    Digest-preserving by construction: the payload (a signed
    :class:`repro.core.packet.Packet`) carries its cached ``digest`` as a
    plain field, so the receiving shard sees exactly the bytes, signature and
    digest the sender put on the air -- adversary and link-fault bookkeeping
    at the receiving shard operate on an indistinguishable frame.  Frames
    with a pending ``builder`` cannot cross (content is only materialised at
    channel-access time, which already happened for anything transmitted).
    """
    if frame.builder is not None:
        raise BoundaryCodecError(
            f"frame {frame.frame_id} from {frame.sender} still has a pending "
            f"builder; only materialised (transmitted) frames cross shards")
    try:
        return pickle.dumps(
            (frame.sender, frame.payload, frame.size_bytes, frame.channel,
             frame.frame_id),
            protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pragma: no cover - payload must be picklable
        raise BoundaryCodecError(
            f"frame {frame.frame_id} payload is not serializable: {exc}") from exc


def decode_boundary_frame(data: bytes) -> Frame:
    """Reconstruct a frame serialized by :func:`encode_boundary_frame`."""
    sender, payload, size_bytes, channel, frame_id = pickle.loads(data)
    frame = Frame(sender=sender, payload=payload, size_bytes=size_bytes,
                  channel=channel)
    frame.frame_id = frame_id  # keep the home shard's id (trace labels)
    return frame
