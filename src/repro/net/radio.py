"""Radio/PHY model: airtime and frame parameters.

The paper's testbed uses LoRa radios on STM32F767 boards with the transmit
range limited to about a metre; consensus latencies are in the tens of
seconds because LoRa airtime dominates.  The radio model reduces the PHY to
what the consensus experiments are sensitive to:

* ``bitrate_bps``     -- payload bitrate,
* ``preamble_s``      -- fixed per-frame overhead (preamble + PHY header),
* ``max_payload_bytes`` -- maximum payload per frame; larger packets are sent
  as multiple fragments, each paying the preamble overhead and counting as an
  additional channel access (Section IV-A: INITIAL-phase proposals span
  multiple packets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RadioConfig:
    """Parameters of the radio used by every node on a channel."""

    name: str
    bitrate_bps: float
    preamble_s: float
    max_payload_bytes: int
    #: processing delay added per received frame before the DMA buffer sees it
    rx_turnaround_s: float = 0.002

    def fragments(self, size_bytes: int) -> int:
        """Number of PHY frames needed to carry ``size_bytes`` of payload.

        A zero-byte packet is a control frame: it still occupies one PHY frame
        (preamble + header, no payload).  Negative sizes are a caller bug and
        raise ``ValueError`` instead of silently billing one byte.
        """
        if size_bytes < 0:
            raise ValueError(f"payload size must be >= 0 bytes, got {size_bytes}")
        if size_bytes == 0:
            return 1
        return math.ceil(size_bytes / self.max_payload_bytes)

    def airtime(self, size_bytes: int) -> float:
        """Time on air for a packet of ``size_bytes`` (all fragments).

        Zero-byte control frames cost exactly one preamble and no payload
        time, consistent with :meth:`fragments`; previously ``airtime(0)``
        billed one phantom payload byte while ``fragments(0)`` billed none.
        """
        fragments = self.fragments(size_bytes)
        payload_time = (size_bytes * 8.0) / self.bitrate_bps
        return fragments * self.preamble_s + payload_time


#: LoRa SF7 / 125 kHz: ~5.5 kbit/s, the paper's resource-constrained setting.
LORA_SF7_125KHZ = RadioConfig(
    name="lora-sf7-125k",
    bitrate_bps=5470.0,
    preamble_s=0.025,
    max_payload_bytes=222,
)

#: LoRa SF7 / 250 kHz: roughly twice as fast; used for sensitivity analyses.
LORA_FAST = RadioConfig(
    name="lora-sf7-250k",
    bitrate_bps=10940.0,
    preamble_s=0.015,
    max_payload_bytes=222,
)

#: A Wi-Fi-like radio (1 Mbit/s, large frames) for what-if comparisons.
WIFI_LIKE = RadioConfig(
    name="wifi-1mbps",
    bitrate_bps=1_000_000.0,
    preamble_s=0.0005,
    max_payload_bytes=1500,
)
