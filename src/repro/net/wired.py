"""A simple wired-network cost model used as the Table I reference point.

The paper compares message overhead per node in three settings: wired
networks (every broadcast costs ``N - 1`` unicasts over dedicated links),
the wireless baseline (a broadcast costs one transmission thanks to the
shared channel) and ConsensusBatcher (N parallel components share one
transmission).  This module provides the wired reference: per-link latency /
bandwidth and the unicast fan-out cost of a broadcast, so benchmarks can
compute the wired column of Table I and sanity-check latency intuitions
("why wired HoneyBadgerBFT does not congest").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WiredNetworkModel:
    """Point-to-point wired network with dedicated full-duplex links."""

    link_latency_s: float = 0.002
    bandwidth_bps: float = 100_000_000.0

    def unicast_time(self, size_bytes: int) -> float:
        """Time to deliver one unicast message."""
        return self.link_latency_s + (size_bytes * 8.0) / self.bandwidth_bps

    def broadcast_messages(self, num_nodes: int) -> int:
        """Messages a node must send to broadcast to ``num_nodes - 1`` peers."""
        return max(0, num_nodes - 1)

    def broadcast_time(self, num_nodes: int, size_bytes: int) -> float:
        """Time to complete a broadcast, assuming parallel dedicated links.

        Wired links are independent, so the broadcast completes after one
        unicast time; the *message count* is still ``N - 1``, which is the
        quantity Table I tracks.
        """
        if num_nodes <= 1:
            return 0.0
        return self.unicast_time(size_bytes)
