"""CSMA/CA medium access control.

TDMA is unusable in an asynchronous network (Section IV-A), so every node
competes for the shared channel with carrier sensing plus a random backoff:
before transmitting, a node waits for the channel to be idle for a DIFS
period plus a random number of backoff slots.  Collisions still happen when
two nodes pick overlapping start times; the MAC does *not* retransmit --
recovery is the job of the protocol-level NACK/retransmission mechanism,
exactly as in the paper's design.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from repro.net.channel import Frame, WirelessChannel
from repro.net.sim import Simulator
from repro.net.trace import NetworkTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NetworkNode


@dataclass(frozen=True)
class CsmaConfig:
    """CSMA/CA parameters."""

    slot_s: float = 0.005
    difs_s: float = 0.010
    cw_min: int = 8
    cw_max: int = 64
    #: maximum number of frames queued before the oldest is dropped
    queue_limit: int = 256


class CsmaMac:
    """Per-node CSMA/CA transmitter bound to one :class:`WirelessChannel`."""

    def __init__(self, sim: Simulator, node_id: int, channel: WirelessChannel,
                 config: CsmaConfig, trace: NetworkTrace, rng) -> None:
        self.sim = sim
        self.node_id = node_id
        self.channel = channel
        self.config = config
        self.trace = trace
        self.rng = rng
        self.node: Optional["NetworkNode"] = None
        self._queue: deque[Frame] = deque()
        self._state = "idle"  # idle | backoff | transmitting
        self._contention_window = config.cw_min
        self._tx_start = 0.0
        self._tx_end = 0.0
        self._backoff_started = 0.0
        channel.attach(self)

    # ----------------------------------------------------------------- status
    @property
    def queue_length(self) -> int:
        """Number of frames waiting for the channel."""
        return len(self._queue)

    @property
    def state(self) -> str:
        """Current MAC state (idle, backoff or transmitting)."""
        return self._state

    def was_transmitting_during(self, start: float, end: float) -> bool:
        """True if this node's transmitter was active during [start, end]."""
        if self._tx_end <= self._tx_start:
            return False
        return not (end <= self._tx_start or start >= self._tx_end)

    # ------------------------------------------------------------------- send
    def enqueue(self, frame: Frame) -> None:
        """Queue a frame for transmission."""
        if len(self._queue) >= self.config.queue_limit:
            self._queue.popleft()
        self._queue.append(frame)
        if self._state == "idle":
            self._start_backoff()

    def _start_backoff(self) -> None:
        if not self._queue:
            self._state = "idle"
            return
        self._state = "backoff"
        self._backoff_started = self.sim.now
        slots = self.rng.randrange(self._contention_window)
        wait = max(0.0, self.channel.busy_until - self.sim.now)
        delay = wait + self.config.difs_s + slots * self.config.slot_s
        self.sim.schedule(delay, self._attempt, label=f"csma-attempt:{self.node_id}")

    def _attempt(self) -> None:
        if self._state != "backoff" or not self._queue:
            return
        if self.channel.is_busy():
            # Channel got grabbed while we were counting down; widen the
            # contention window and retry (binary exponential backoff).
            self._contention_window = min(self._contention_window * 2,
                                          self.config.cw_max)
            self._start_backoff()
            return
        self.trace.record_backoff(self.node_id, self.sim.now - self._backoff_started)
        frame = self._queue[0]
        if frame.builder is not None:
            built = frame.builder()
            frame.builder = None
            if built is None:
                # Nothing left to send for this frame (content was merged
                # elsewhere or the instances were retired); drop it.
                self._queue.popleft()
                self._state = "idle"
                if self._queue:
                    self._start_backoff()
                return
            frame.payload, frame.size_bytes = built
        self._state = "transmitting"
        self._tx_start = self.sim.now
        self._tx_end = self.sim.now + self.channel.radio.airtime(frame.size_bytes)
        self.channel.transmit(self, frame)

    def on_transmit_done(self, frame: Frame, collided: bool) -> None:
        """Channel callback when our transmission left the air."""
        if self._queue and self._queue[0] is frame:
            self._queue.popleft()
        if collided:
            self._contention_window = min(self._contention_window * 2,
                                          self.config.cw_max)
        else:
            self._contention_window = self.config.cw_min
        self._state = "idle"
        if self._queue:
            self._start_backoff()
