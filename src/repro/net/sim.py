"""Deterministic discrete-event simulation kernel.

Every experiment in this reproduction runs on virtual time.  The kernel is a
binary-heap event queue with a monotonically increasing sequence number used
to break ties, which makes runs fully deterministic for a given seed and
schedule of calls.

Heap entries are plain ``(time, seq, event)`` tuples: tuple comparison is
implemented in C, whereas the previous ``order=True`` dataclass dispatched
every ``<`` through generated Python code, which dominated heap operations in
large-n runs.  Cancelled events are skipped when popped; when too many
cancelled entries accumulate (heavy retransmission-timer churn) the queue is
compacted in place so memory and pop costs stay proportional to the live
event count.

The kernel deliberately stays tiny: processes are modelled as callbacks, and
higher-level abstractions (timers, periodic timers) are provided as thin
wrappers.  Components and protocols never block; they react to delivered
events, which matches the asynchronous message-passing model of the paper.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional, Sequence

# Compact the heap once at least this many cancelled events are queued AND
# they outnumber the live ones (amortised O(1) per cancellation).
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an invalid state."""


class Event:
    """A scheduled callback.

    The simulator orders events by ``(time, seq)`` (timestamp order with FIFO
    tie-breaking).  Cancelled events stay in the heap but are skipped when
    popped, and are reclaimed wholesale by queue compaction.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label", "_cancel_tally")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 cancelled: bool = False, label: str = "",
                 cancel_tally: Optional[list[int]] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.label = label
        self._cancel_tally = cancel_tally

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        if not self.cancelled:
            self.cancelled = True
            if self._cancel_tally is not None:
                self._cancel_tally[0] += 1


class Simulator:
    """A discrete-event simulator with virtual time and a deterministic RNG.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All stochastic
        choices in the network substrate (backoff slots, jitter, adversarial
        delays) draw from this RNG so that a run is reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.rng = random.Random(seed)
        self.seed = seed
        self._running = False
        self._events_processed = 0
        # Shared mutable tally of cancelled-but-queued events; Event.cancel
        # increments it so the simulator knows when compaction pays off.
        self._cancelled_queued = [0]

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be a non-negative, non-NaN number: a NaN compares
        false against everything, so it used to slip past the ``< 0`` guard
        and silently poison the heap invariant (every pop after it is
        arbitrary, so the run is no longer a function of the seed).
        """
        if delay != delay:  # NaN: the only value that breaks heap ordering
            raise SimulationError(
                f"cannot schedule event {label or '<unlabelled>'!r}: "
                f"delay is NaN")
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event {label or '<unlabelled>'!r} in the "
                f"past (delay={delay})")
        return self._push(self._now + delay, callback, label)

    def schedule_at(self, when: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when != when:
            raise SimulationError(
                f"cannot schedule event {label or '<unlabelled>'!r}: "
                f"time is NaN")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event {label or '<unlabelled>'!r} at "
                f"{when} before current time {self._now}")
        return self._push(when, callback, label)

    def _push(self, when: float, callback: Callable[[], None],
              label: str) -> Event:
        event = Event(time=when, seq=next(self._seq), callback=callback,
                      label=label, cancel_tally=self._cancelled_queued)
        heapq.heappush(self._queue, (when, event.seq, event))
        cancelled = self._cancelled_queued[0]
        if (cancelled >= _COMPACT_MIN_CANCELLED
                and cancelled * 2 > len(self._queue)):
            self._compact()
        return event

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (heap order is preserved
        by rebuilding; (time, seq) keys make the result deterministic).

        Mutates the list in place: the run loops hold a local reference to it.
        """
        self._queue[:] = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_queued[0] = 0

    def call_soon(self, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, callback, label=label)

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the virtual time at which the run stopped.
        """
        self._running = True
        processed_this_run = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                when, _, event = queue[0]
                if until is not None and when > until:
                    self._now = until
                    break
                pop(queue)
                if event.cancelled:
                    self._cancelled_queued[0] -= 1
                    continue
                # Detach the tally: a cancel() after the pop (e.g. a periodic
                # timer stopped from inside its own callback) must not count
                # an event that is no longer queued, or the compaction
                # heuristic would fire on a queue with nothing to reclaim.
                event._cancel_tally = None
                self._now = when
                event.callback()
                self._events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_window(self, until: float,
                   poll: Optional[Callable[[], None]] = None) -> int:
        """Run every event with ``time <= until``, then land exactly on ``until``.

        The conservative-synchronization primitive: a shard executes one
        barrier window ``(now, until]`` with this call.  Events scheduled at
        exactly ``until`` execute (cross-shard transmissions land precisely on
        the horizon, so the boundary must be inclusive), an empty window
        fast-forwards the clock to ``until`` without touching the heap, and
        ``poll`` -- when given -- runs after every processed event (the
        multi-hop harness uses it to couple local decisions into the global
        domain at the same per-event cadence as :meth:`run_until`).

        Returns the number of events processed in the window.
        """
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        self._running = True
        try:
            while queue:
                when, _, event = queue[0]
                if when > until:
                    break
                pop(queue)
                if event.cancelled:
                    self._cancelled_queued[0] -= 1
                    continue
                event._cancel_tally = None  # see run(): popped events must not tally
                self._now = when
                event.callback()
                self._events_processed += 1
                processed += 1
                if poll is not None:
                    poll()
            if until > self._now:
                self._now = until
        finally:
            self._running = False
        return processed

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        """Run until ``predicate()`` is true or ``timeout`` virtual seconds pass.

        The predicate is evaluated after every processed event.  Returns True
        if the predicate became true, False on timeout or queue exhaustion.
        (A ``check_interval`` parameter used to exist but was silently
        ignored; it has been removed rather than given surprise semantics.)
        """
        deadline = self._now + timeout
        if predicate():
            return True
        queue = self._queue
        pop = heapq.heappop
        while queue:
            when, _, event = queue[0]
            if when > deadline:
                self._now = deadline
                return predicate()
            pop(queue)
            if event.cancelled:
                self._cancelled_queued[0] -= 1
                continue
            event._cancel_tally = None  # see run(): popped events must not tally
            self._now = when
            event.callback()
            self._events_processed += 1
            if predicate():
                return True
        return predicate()

    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live (non-cancelled) queued event, or None.

        Cancelled entries found at the top are dropped on the way (they would
        be skipped by the run loops anyway), so the answer is exact.  The
        sharded engine uses this as a lookahead ingredient: no fresh work --
        in particular no fresh backbone channel access -- can originate
        before this instant.
        """
        queue = self._queue
        while queue:
            when, _, event = queue[0]
            if event.cancelled:
                heapq.heappop(queue)
                self._cancelled_queued[0] -= 1
                continue
            return when
        return None


class ShardedSimulator:
    """Facade advancing several per-shard :class:`Simulator`s in lockstep.

    Each member simulator owns its own event heap, sequence counter and RNG
    stream; the facade advances all of them window by window under a common
    horizon (classic conservative synchronization).  It deliberately knows
    nothing about *how* horizons are chosen or what crosses shard boundaries
    -- that is :mod:`repro.net.shard` -- it only guarantees the lockstep
    discipline and aggregates the bookkeeping the single-simulator API
    exposes (``now``, ``events_processed``, ``pending_events``).
    """

    def __init__(self, shards: Sequence["Simulator"]) -> None:
        if not shards:
            raise SimulationError("a sharded simulator needs at least one shard")
        self.shards = list(shards)
        self._now = 0.0

    @property
    def now(self) -> float:
        """The last barrier horizon every shard has reached."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed across all shards."""
        return sum(shard.events_processed for shard in self.shards)

    def pending_events(self) -> int:
        """Total queued events across all shards."""
        return sum(shard.pending_events() for shard in self.shards)

    def run_window(self, until: float,
                   polls: Optional[Sequence[Optional[Callable[[], None]]]] = None
                   ) -> list[int]:
        """Advance every shard to ``until``; returns per-shard event counts.

        ``until`` must not move backwards (shards have already executed up to
        the previous horizon).  ``polls`` optionally supplies one per-event
        poll callback per shard (see :meth:`Simulator.run_window`).
        """
        if until < self._now:
            raise SimulationError(
                f"cannot run a window back to {until}; shards are already "
                f"synchronized at {self._now}")
        if polls is None:
            polls = [None] * len(self.shards)
        processed = [shard.run_window(until, poll=poll)
                     for shard, poll in zip(self.shards, polls)]
        self._now = until
        return processed


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    Asynchronous BFT consensus in wireless networks relies on retransmission
    timers to make progress (Section IV-A of the paper); this helper keeps the
    bookkeeping (cancel/restart) in one place.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None],
                 label: str = "timer") -> None:
        self._sim = sim
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """True if the timer is currently scheduled."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, label=self._label)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """A timer that re-fires every ``interval`` seconds until stopped.

    Optional jitter (a fraction of the interval drawn uniformly) desynchronises
    periodic retransmissions across nodes, which matters on a shared channel.
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], None], jitter: float = 0.0,
                 label: str = "periodic") -> None:
        if interval <= 0:
            raise SimulationError("periodic timer interval must be positive")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self._label = label
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        """True while the periodic timer is active."""
        return not self._stopped

    def start(self) -> None:
        """Start (or restart) the periodic firing."""
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        """Stop firing."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self) -> None:
        delay = self.interval
        if self._jitter > 0:
            delay += self._sim.rng.uniform(0, self._jitter * self.interval)
        self._event = self._sim.schedule(delay, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._schedule_next()
