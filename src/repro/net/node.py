"""The node runtime: CPU accounting, DMA-modelled receive path, interfaces.

A wireless consensus node is a battery-powered, single-core device: crypto
operations and packet handling occupy the CPU, and the paper stresses that
these computation delays interact with the DMA receive buffer and the
protocol timers to produce congestion.  :class:`NetworkNode` models that
pipeline:

``channel -> (rx turnaround) -> DMA buffer -> CPU (busy-time) -> protocol stack``

and, on the transmit side,

``protocol stack -> (CPU finishes computing) -> CSMA MAC queue -> channel``.

The protocol stack bound to the node only needs to expose
``handle_frame(sender_id, payload)``; everything it sends goes through
:meth:`NetworkNode.broadcast`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.dma import DmaBuffer, DmaConfig
from repro.net.channel import Frame
from repro.net.csma import CsmaMac
from repro.net.sim import Simulator
from repro.net.trace import NetworkTrace


@dataclass(frozen=True)
class CpuConfig:
    """CPU cost parameters for packet handling (crypto costs come from the
    :class:`repro.crypto.timing.CryptoSuite` cost model)."""

    frame_processing_s: float = 0.003
    task_processing_s: float = 0.001


class NetworkNode:
    """A consensus node attached to one or more wireless channels."""

    def __init__(self, sim: Simulator, node_id: int, trace: NetworkTrace,
                 cpu: CpuConfig = CpuConfig(),
                 dma_config: Optional[DmaConfig] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.trace = trace
        self.cpu = cpu
        self.dma = DmaBuffer(config=dma_config or DmaConfig())
        self.interfaces: dict[str, CsmaMac] = {}
        self.default_interface = "radio0"
        self.stack: Optional[Any] = None
        self._channel_stacks: dict[str, Any] = {}
        self.cpu_available_at = 0.0
        self._in_task = False
        self._task_charge = 0.0
        self._outbox: list[tuple] = []
        #: frames that arrived while the CPU was busy, in arrival order
        self._rx_pending: deque[Frame] = deque()
        self._rx_drain_scheduled = False
        #: set True to silence the node entirely (crash-fault behaviour)
        self.crashed = False

    # -------------------------------------------------------------- wiring
    def add_interface(self, name: str, mac: CsmaMac) -> None:
        """Attach a MAC (and its channel) under interface ``name``."""
        mac.node = self
        self.interfaces[name] = mac
        if len(self.interfaces) == 1:
            self.default_interface = name

    def bind_stack(self, stack: Any, channel: Optional[str] = None) -> None:
        """Bind a protocol stack (must expose ``handle_frame``).

        With ``channel=None`` the stack becomes the default for every
        interface; otherwise it only receives frames arriving on the named
        channel.  Multi-hop cluster leaders use this to run a local-consensus
        stack on their cluster channel and a global-consensus stack on the
        backbone channel simultaneously.
        """
        if channel is None:
            self.stack = stack
        else:
            self._channel_stacks[channel] = stack

    def stack_for_channel(self, channel: str) -> Optional[Any]:
        """The stack that should process frames from ``channel``."""
        return self._channel_stacks.get(channel, self.stack)

    # ----------------------------------------------------------- CPU model
    def charge_cpu(self, seconds: float) -> None:
        """Charge CPU time to this node (crypto cost sink).

        Inside a frame/task handler the charge accumulates and is applied when
        the handler finishes; outside a handler it extends the CPU-busy time
        immediately.
        """
        if seconds <= 0:
            return
        if self._in_task:
            self._task_charge += seconds
        else:
            start = max(self.sim.now, self.cpu_available_at)
            self.cpu_available_at = start + seconds
            self.trace.record_cpu(self.node_id, seconds)

    def _run_accounted(self, fn: Callable[[], None], base_cost: float) -> None:
        """Run ``fn`` under CPU accounting and flush its outgoing frames."""
        self._in_task = True
        self._task_charge = 0.0
        self._outbox = []
        try:
            fn()
        finally:
            total = self._task_charge + base_cost
            start = max(self.sim.now, self.cpu_available_at)
            self.cpu_available_at = start + total
            self.trace.record_cpu(self.node_id, total)
            outbox = self._outbox
            self._in_task = False
            self._task_charge = 0.0
            self._outbox = []
        send_at = self.cpu_available_at
        for payload, size_bytes, interface, builder in outbox:
            self.sim.schedule_at(send_at,
                                 lambda p=payload, s=size_bytes, i=interface, b=builder:
                                 self._enqueue_frame(p, s, i, b),
                                 label=f"tx-enqueue:{self.node_id}")

    # ------------------------------------------------------------ receive path
    def deliver_frame(self, frame: Frame) -> None:
        """Called by the channel when a frame arrives at this node's radio."""
        if self.crashed:
            return
        interrupt_at = self.dma.on_frame(self.sim.now, frame.size_bytes)
        start_at = max(interrupt_at, self.cpu_available_at)
        self.sim.schedule_at(start_at, lambda: self._process_frame(frame),
                             label=f"rx-process:{self.node_id}")

    def _process_frame(self, frame: Frame) -> None:
        if self.crashed:
            return
        if self.sim.now < self.cpu_available_at or self._rx_pending:
            # The CPU got busier since this frame was scheduled (another frame
            # or task is still being processed); a single-core node handles
            # one thing at a time.  Backlogged frames wait in a FIFO queue
            # with a single wake-up event -- rescheduling every waiting frame
            # on every CPU wake-up (the previous behaviour) is quadratic in
            # the backlog depth and dominated large-n runs on fast radios.
            # Processing order and times are unchanged: the queue preserves
            # the arrival order the per-frame reschedules replayed.
            self._rx_pending.append(frame)
            self._schedule_rx_drain()
            return
        self._handle_frame_now(frame)

    def _handle_frame_now(self, frame: Frame) -> None:
        stack = self.stack_for_channel(frame.channel)
        if stack is None:
            return
        self.trace.record_frame_received(self.node_id)
        self._run_accounted(lambda: stack.handle_frame(frame.sender, frame.payload),
                            base_cost=self.cpu.frame_processing_s)

    def _schedule_rx_drain(self) -> None:
        if self._rx_drain_scheduled:
            return
        self._rx_drain_scheduled = True
        self.sim.schedule_at(self.cpu_available_at, self._drain_rx_pending,
                             label=f"rx-requeue:{self.node_id}")

    def _drain_rx_pending(self) -> None:
        self._rx_drain_scheduled = False
        if self.crashed:
            self._rx_pending.clear()
            return
        if not self._rx_pending:
            return
        if self.sim.now < self.cpu_available_at:
            # A task slipped in and occupied the CPU again; try later.
            self._schedule_rx_drain()
            return
        self._handle_frame_now(self._rx_pending.popleft())
        if self._rx_pending:
            self._schedule_rx_drain()

    # ------------------------------------------------------------- send path
    def broadcast(self, payload: Any, size_bytes: int,
                  interface: Optional[str] = None) -> None:
        """Broadcast ``payload`` on ``interface`` (queued behind the CPU)."""
        self._queue_send(payload, size_bytes, interface, builder=None)

    def broadcast_deferred(self, builder: Callable[[], Optional[tuple[Any, int]]],
                           interface: Optional[str] = None) -> None:
        """Queue a frame whose content is built at channel-access time.

        The ConsensusBatcher transport uses this so that every update that
        accumulates while the node waits for the channel rides in the same
        packet (one channel access for many component messages).
        """
        self._queue_send(None, 1, interface, builder=builder)

    def _queue_send(self, payload: Any, size_bytes: int,
                    interface: Optional[str],
                    builder: Optional[Callable[[], Optional[tuple[Any, int]]]]) -> None:
        if self.crashed:
            return
        interface = interface or self.default_interface
        if self._in_task:
            self._outbox.append((payload, size_bytes, interface, builder))
        else:
            send_at = max(self.sim.now, self.cpu_available_at)
            self.sim.schedule_at(send_at,
                                 lambda: self._enqueue_frame(payload, size_bytes,
                                                             interface, builder),
                                 label=f"tx-enqueue:{self.node_id}")

    def _enqueue_frame(self, payload: Any, size_bytes: int, interface: str,
                       builder: Optional[Callable[[], Optional[tuple[Any, int]]]] = None
                       ) -> None:
        if self.crashed:
            return
        mac = self.interfaces.get(interface)
        if mac is None:
            raise KeyError(f"node {self.node_id} has no interface {interface!r}; "
                           f"known: {sorted(self.interfaces)}")
        mac.enqueue(Frame(sender=self.node_id, payload=payload,
                          size_bytes=size_bytes, builder=builder))

    # ----------------------------------------------------------------- tasks
    def run_task(self, fn: Callable[[], None]) -> None:
        """Run protocol-initiated work (timer fire, protocol start) with CPU
        accounting, at the earliest time the CPU is free."""
        if self.crashed:
            return
        start_at = max(self.sim.now, self.cpu_available_at)
        self.sim.schedule_at(start_at,
                             lambda: self._run_accounted(fn, self.cpu.task_processing_s),
                             label=f"task:{self.node_id}")

    def crash(self) -> None:
        """Silence the node permanently (crash fault)."""
        self.crashed = True
