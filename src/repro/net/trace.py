"""Run statistics: channel accesses, airtime, collisions, messages, bytes.

ConsensusBatcher's claim is a reduction of *channel access contention*; the
trace makes that quantity (and its friends) first-class so benchmarks can
report it next to latency and throughput, and so Table I's wireless columns
can be cross-checked against the simulator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class ChannelStats:
    """Aggregate statistics of one wireless channel."""

    transmissions: int = 0
    collisions: int = 0
    delivered_frames: int = 0
    missed_half_duplex: int = 0
    adversary_drops: int = 0
    busy_time: float = 0.0
    bytes_on_air: int = 0

    @property
    def collision_rate(self) -> float:
        """Fraction of transmissions that ended in a collision."""
        if self.transmissions == 0:
            return 0.0
        return self.collisions / self.transmissions


@dataclass
class NodeStats:
    """Per-node statistics."""

    channel_accesses: int = 0
    frames_sent: int = 0
    fragments_sent: int = 0
    bytes_sent: int = 0
    frames_received: int = 0
    logical_messages_sent: int = 0
    logical_messages_received: int = 0
    cpu_busy_seconds: float = 0.0
    backoff_seconds: float = 0.0


@dataclass
class NetworkTrace:
    """Collects statistics across channels and nodes for one simulation run."""

    channels: dict[str, ChannelStats] = field(default_factory=lambda: defaultdict(ChannelStats))
    nodes: dict[int, NodeStats] = field(default_factory=lambda: defaultdict(NodeStats))

    # ------------------------------------------------------------ channel side
    def record_transmission(self, channel: str, size_bytes: int,
                            airtime: float) -> None:
        """A frame was put on the air."""
        stats = self.channels[channel]
        stats.transmissions += 1
        stats.busy_time += airtime
        stats.bytes_on_air += size_bytes

    def record_collision(self, channel: str) -> None:
        """A frame was lost to a collision."""
        self.channels[channel].collisions += 1

    def record_delivery(self, channel: str) -> None:
        """A frame was delivered to some receiver."""
        self.channels[channel].delivered_frames += 1

    def record_half_duplex_miss(self, channel: str) -> None:
        """A frame was missed because the receiver was itself transmitting."""
        self.channels[channel].missed_half_duplex += 1

    def record_adversary_drop(self, channel: str) -> None:
        """A frame copy was suppressed by the adversary (drop or partition)."""
        self.channels[channel].adversary_drops += 1

    # --------------------------------------------------------------- node side
    def record_channel_access(self, node_id: int, fragments: int,
                              size_bytes: int) -> None:
        """Node ``node_id`` competed for the channel and sent a frame."""
        stats = self.nodes[node_id]
        stats.channel_accesses += fragments
        stats.frames_sent += 1
        stats.fragments_sent += fragments
        stats.bytes_sent += size_bytes

    def record_frame_received(self, node_id: int) -> None:
        """Node ``node_id`` received a frame."""
        self.nodes[node_id].frames_received += 1

    def record_logical_send(self, node_id: int, count: int = 1) -> None:
        """Node ``node_id`` emitted ``count`` logical protocol messages."""
        self.nodes[node_id].logical_messages_sent += count

    def record_logical_receive(self, node_id: int, count: int = 1) -> None:
        """Node ``node_id`` received ``count`` logical protocol messages."""
        self.nodes[node_id].logical_messages_received += count

    def record_cpu(self, node_id: int, seconds: float) -> None:
        """Node ``node_id`` spent CPU time (cryptography, packet handling)."""
        self.nodes[node_id].cpu_busy_seconds += seconds

    def record_backoff(self, node_id: int, seconds: float) -> None:
        """Node ``node_id`` waited for the channel."""
        self.nodes[node_id].backoff_seconds += seconds

    # ------------------------------------------------------------- aggregates
    @property
    def total_channel_accesses(self) -> int:
        """Total channel accesses across all nodes."""
        return sum(stats.channel_accesses for stats in self.nodes.values())

    @property
    def total_bytes_sent(self) -> int:
        """Total bytes put on the air across all nodes."""
        return sum(stats.bytes_sent for stats in self.nodes.values())

    @property
    def total_collisions(self) -> int:
        """Total collisions across all channels."""
        return sum(stats.collisions for stats in self.channels.values())

    @property
    def total_frames_sent(self) -> int:
        """Total frames sent across all nodes."""
        return sum(stats.frames_sent for stats in self.nodes.values())

    @property
    def total_adversary_drops(self) -> int:
        """Total frame copies suppressed by the adversary across channels."""
        return sum(stats.adversary_drops for stats in self.channels.values())

    def channel_accesses_per_node(self) -> dict[int, int]:
        """Channel accesses keyed by node id."""
        return {node_id: stats.channel_accesses
                for node_id, stats in self.nodes.items()}

    def summary(self) -> dict[str, float]:
        """A flat summary suitable for benchmark reporting."""
        return {
            "channel_accesses": float(self.total_channel_accesses),
            "frames_sent": float(self.total_frames_sent),
            "bytes_sent": float(self.total_bytes_sent),
            "collisions": float(self.total_collisions),
            "adversary_drops": float(self.total_adversary_drops),
            "busy_time": sum(stats.busy_time for stats in self.channels.values()),
        }
