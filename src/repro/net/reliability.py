"""Reliability mechanisms: NACK-based (the paper's choice) and ACK-based.

Section IV-B.1 argues that NACK-based reliability fits asynchronous wireless
BFT consensus: nodes progress when they have collected enough votes, not when
senders have collected acknowledgements, and a broadcast only costs one
transmission instead of ``N + 1``.  ConsensusBatcher therefore embeds NACK
bitmaps in every packet.

These helpers track, per consensus instance and phase, what a node has
received (so it can advertise what it is still missing) and -- in ACK mode --
which receivers have confirmed reception (so the overhead of ACKs can be
measured for comparison).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ReliabilityMode(enum.Enum):
    """Which reliability mechanism the transport uses."""

    NACK = "nack"
    ACK = "ack"


@dataclass
class NackState:
    """Tracks received contributions per (instance, phase) and exposes gaps.

    ``expected_senders`` is the set of peers a node expects contributions from
    (normally every other node); ``needed`` reports instances/phases where the
    quorum has not yet been reached, which is exactly the information the
    compressed NACK field of ConsensusBatcher advertises (one bit per
    instance, Section IV-C.1).
    """

    num_instances: int
    expected_senders: frozenset[int]
    quorum: int
    received: dict[tuple[int, str], set[int]] = field(default_factory=dict)

    def record(self, instance: int, phase: str, sender: int) -> None:
        """Note that ``sender``'s contribution for (instance, phase) arrived."""
        self.received.setdefault((instance, phase), set()).add(sender)

    def have(self, instance: int, phase: str) -> int:
        """Number of distinct contributions received for (instance, phase)."""
        return len(self.received.get((instance, phase), set()))

    def satisfied(self, instance: int, phase: str) -> bool:
        """True once the quorum for (instance, phase) has been reached."""
        return self.have(instance, phase) >= self.quorum

    def nack_bitmap(self, phase: str) -> list[bool]:
        """One bit per instance: True = still missing the quorum (needs resend)."""
        return [not self.satisfied(instance, phase)
                for instance in range(self.num_instances)]

    def missing_senders(self, instance: int, phase: str) -> set[int]:
        """Which expected senders have not contributed to (instance, phase)."""
        return set(self.expected_senders) - self.received.get((instance, phase), set())


@dataclass
class AckState:
    """Tracks acknowledgements in ACK mode (used only for comparison benches)."""

    expected_receivers: frozenset[int]
    acked: dict[int, set[int]] = field(default_factory=dict)

    def record_ack(self, message_id: int, receiver: int) -> None:
        """Record that ``receiver`` acknowledged ``message_id``."""
        self.acked.setdefault(message_id, set()).add(receiver)

    def fully_acked(self, message_id: int) -> bool:
        """True when every expected receiver has acknowledged."""
        return self.acked.get(message_id, set()) >= self.expected_receivers

    def pending(self, message_id: int) -> set[int]:
        """Receivers that have not yet acknowledged ``message_id``."""
        return set(self.expected_receivers) - self.acked.get(message_id, set())

    def messages_required(self, num_receivers: int) -> int:
        """Messages needed for one reliable broadcast under ACK (paper: N + 1)."""
        return num_receivers + 1
