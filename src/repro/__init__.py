"""Reproduction of "Asynchronous BFT Consensus Made Wireless" (ICDCS 2025).

This package implements the paper's contribution, **ConsensusBatcher**, together
with every substrate it depends on:

* :mod:`repro.net` -- a deterministic discrete-event wireless network simulator
  (shared half-duplex channel, CSMA/CA, collisions, airtime, DMA-style receive
  buffering, NACK-based reliability, single-hop and clustered multi-hop
  topologies).
* :mod:`repro.crypto` -- functionally faithful simulated threshold cryptography
  (threshold signatures, threshold coin flipping, threshold encryption) and
  digital signatures, with per-curve size/latency profiles taken from the
  paper's Figure 10.
* :mod:`repro.core` -- the ConsensusBatcher itself: packet field model, the
  packet formats of Figures 4-6, NACK compression, vertical and horizontal
  batching, the DMA alignment model and the analytical message-overhead model
  of Table I.
* :mod:`repro.components` -- consensus components: Bracha/Cachin reliable
  broadcast, RBC-small, PRBC, CBC, CBC-small, Bracha's ABA (local coin),
  Cachin-style ABA (shared coin) and the coin-flipping ABA used by BEAT.
* :mod:`repro.protocols` -- asynchronous BFT consensus protocols built from the
  components: HoneyBadgerBFT (local-coin and shared-coin), BEAT0 and Dumbo2,
  each in ConsensusBatcher-batched and unbatched-baseline form, plus the
  two-phase multi-hop construction of Section V-B.
* :mod:`repro.testbed` -- the evaluation testbed: deployment harness, workload
  generators, latency/throughput metrics, Byzantine strategies and the canned
  scenarios used to regenerate every table and figure of the evaluation.

Quickstart
----------

>>> from repro.testbed import run_consensus, Scenario
>>> result = run_consensus("honeybadger-sc", Scenario.single_hop(num_nodes=4),
...                        batch_size=8, seed=1)
>>> result.decided
True
"""

from repro.version import __version__

__all__ = ["__version__"]
