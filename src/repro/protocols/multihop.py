"""Multi-hop (clustered) consensus: local consensus + leader-level global consensus.

Section V-B: the network is divided into clusters, each a single-hop network.
A two-phase approach -- akin to blockchain sharding -- runs local consensus in
parallel inside every cluster; once a cluster decides, a (changeable) cluster
leader carries the cluster's decided block into a *global* consensus among the
cluster leaders, which orders all clusters' proposals.  Local consensus keeps
safety and liveness as long as fewer than one third of each cluster is
Byzantine; a faulty leader can be detected and replaced by its cluster because
every cluster member knows the locally decided block.

The networking (per-cluster channels + a routed backbone channel for the
leaders) is assembled by the testbed harness; this module holds the
protocol-level pieces: leader selection, encoding of a cluster's contribution
to the global consensus and the combined result record.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.topology import Cluster
from repro.protocols.base import block_digest, decode_batch, encode_batch


def select_leader(cluster: Cluster, epoch: int, excluded: frozenset[int] = frozenset()) -> int:
    """Deterministically select a cluster leader for ``epoch``.

    The paper randomly selects a changeable leader; determinism (seeded by the
    epoch) keeps simulation runs reproducible while preserving the property
    that a misbehaving leader can be rotated out (pass its id in ``excluded``).

    ``excluded`` is per-call only -- a caller that rotates leaders across
    epochs must persist the exclusions itself or a rotated-out Byzantine
    leader would be re-eligible next epoch.  Use :class:`LeaderSchedule` for
    that stateful discipline.
    """
    candidates = [node_id for node_id in cluster.node_ids if node_id not in excluded]
    if not candidates:
        raise ValueError(f"cluster {cluster.index} has no eligible leader")
    seed = int.from_bytes(
        hashlib.sha256(f"leader|{cluster.index}|{epoch}".encode()).digest(), "big")
    return candidates[seed % len(candidates)]


class LeaderSchedule:
    """Leader rotation for one cluster with exclusions that persist.

    :func:`select_leader` takes the excluded set per call, which makes it
    easy for a driver to forget rotated-out leaders between epochs (the bug
    this class fixes): once a Byzantine leader is excluded, it must never be
    re-selected for any later epoch.  The schedule accumulates exclusions and
    threads them into every selection.
    """

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._excluded: set[int] = set()

    @property
    def excluded(self) -> frozenset[int]:
        """The nodes rotated out so far (persists across epochs)."""
        return frozenset(self._excluded)

    def exclude(self, node_id: int) -> None:
        """Permanently rotate ``node_id`` out of the leader candidacy."""
        if node_id not in self.cluster.node_ids:
            raise ValueError(
                f"node {node_id} is not in cluster {self.cluster.index}")
        self._excluded.add(node_id)

    def leader(self, epoch: int) -> int:
        """The epoch's leader, never one of the excluded nodes."""
        return select_leader(self.cluster, epoch,
                             excluded=frozenset(self._excluded))

    def active_leader(self, epoch: int = 0,
                      crashed: Callable[[int], bool] = lambda _node: False,
                      rotate: bool = True) -> int:
        """The leader actually wired into the global domain for ``epoch``.

        This is the *single owner* of the detect-and-replace discipline: when
        ``rotate`` is set and the selected leader is a known fail-stop node
        (``crashed(leader)`` is true), it is permanently excluded and the
        selection advances to the next epoch's candidate, repeating until an
        eligible leader is found.  Exclusions persist on the schedule, so a
        rotated-out leader is never re-selected by any later epoch of the
        same schedule -- the harness and the streaming runner both consult
        one schedule per cluster (held on the deployment) instead of
        re-deriving leaders ad hoc.

        With ``rotate`` unset the raw ``epoch`` selection is returned even if
        crashed (fault models like quorum-loss deliberately crash the
        epoch-0 leaders to prove the global domain stalls).
        """
        leader = self.leader(epoch)
        if not rotate:
            return leader
        while crashed(leader):
            self.exclude(leader)
            epoch += 1
            leader = self.leader(epoch)
        return leader


def encode_cluster_contribution(cluster_index: int, block: list[bytes]) -> bytes:
    """Serialise a cluster's locally decided block for the global consensus."""
    header = cluster_index.to_bytes(4, "big")
    return header + encode_batch(block)


def decode_cluster_contribution(payload: bytes) -> tuple[int, list[bytes]]:
    """Inverse of :func:`encode_cluster_contribution`."""
    if len(payload) < 4:
        raise ValueError("truncated cluster contribution")
    cluster_index = int.from_bytes(payload[:4], "big")
    return cluster_index, decode_batch(payload[4:])


@dataclass
class ClusterOutcome:
    """Result of one cluster's local consensus."""

    cluster_index: int
    leader: int
    block: list[bytes] = field(default_factory=list)
    decide_time: Optional[float] = None

    @property
    def decided(self) -> bool:
        """True once the cluster's local consensus has decided."""
        return self.decide_time is not None

    @property
    def digest(self) -> str:
        """Canonical digest of the cluster's block."""
        return block_digest(self.block)


@dataclass
class MultiHopResult:
    """Combined result of a multi-hop consensus run."""

    local: dict[int, ClusterOutcome] = field(default_factory=dict)
    global_block: list[bytes] = field(default_factory=list)
    global_decide_time: Optional[float] = None
    ordered_clusters: list[int] = field(default_factory=list)

    @property
    def decided(self) -> bool:
        """True once the global consensus has decided."""
        return self.global_decide_time is not None

    @property
    def total_transactions(self) -> int:
        """Transactions committed by the global consensus."""
        return len(self.global_block)
