"""BEAT0 adapted to wireless networks.

BEAT is a family of protocols built on HoneyBadgerBFT by substituting more
efficient components; the paper focuses on BEAT0's replacement of threshold
signatures with threshold *coin flipping* for the ABA common coin, which does
not change the protocol structure (Section III-B.3).  :class:`Beat` therefore
reuses :class:`~repro.protocols.honeybadger.HoneyBadger` with the ``cp`` coin,
wiring the ABA instances to the cheaper coin-flipping cost profile and adding
the extra verification data in the SHARE phase through that coin's share
payload size.
"""

from __future__ import annotations

from typing import Optional

from repro.components.base import ComponentContext, ComponentRouter
from repro.protocols.base import ConsensusConfig, DecideCallback
from repro.protocols.honeybadger import HoneyBadger


class Beat(HoneyBadger):
    """One node's BEAT0 instance for one epoch."""

    name = "beat"

    def __init__(self, ctx: ComponentContext, router: ComponentRouter,
                 config: Optional[ConsensusConfig] = None,
                 on_decide: Optional[DecideCallback] = None) -> None:
        super().__init__(ctx, router, coin="cp", config=config,
                         on_decide=on_decide)
