"""Shared protocol plumbing: configuration, batch encoding, the base class.

A consensus protocol instance lives on one node, is identified by an epoch
``tag``, consumes a proposal (a batch of transactions) via :meth:`propose`,
exchanges component messages through the node's transport/router, and
eventually calls its ``on_decide`` callback with the agreed block (a list of
transactions in a canonical order).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.components.base import ComponentContext, ComponentRouter

DecideCallback = Callable[[list[bytes]], None]

#: canonical names accepted by the testbed harness
PROTOCOL_NAMES = (
    "honeybadger-sc",
    "honeybadger-lc",
    "beat",
    "dumbo-sc",
    "dumbo-lc",
)


class ProtocolName:
    """Parsing/validation helpers for protocol names."""

    @staticmethod
    def validate(name: str) -> str:
        """Return the canonical name or raise ``ValueError``."""
        canonical = name.strip().lower()
        if canonical not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {name!r}; known: {PROTOCOL_NAMES}")
        return canonical

    @staticmethod
    def family(name: str) -> str:
        """The protocol family: honeybadger, beat or dumbo."""
        return ProtocolName.validate(name).split("-")[0]

    @staticmethod
    def coin(name: str) -> str:
        """The coin type: ``sc`` (shared), ``lc`` (local) or ``cp`` (coin flip)."""
        canonical = ProtocolName.validate(name)
        if canonical == "beat":
            return "cp"
        return canonical.split("-")[1]


@dataclass(frozen=True)
class ConsensusConfig:
    """Per-run protocol configuration."""

    #: epoch identifier (becomes the component tag)
    epoch: Any = 0
    #: whether proposals are threshold-encrypted (HoneyBadgerBFT / BEAT)
    use_threshold_encryption: bool = True
    #: cap on ABA rounds (safety net for bounded experiments)
    max_aba_rounds: int = 64


# --------------------------------------------------------------------------
# Transaction batch encoding: a deliberately simple, dependency-free format.
# --------------------------------------------------------------------------

def encode_batch(transactions: list[bytes]) -> bytes:
    """Serialise a list of transactions into a single proposal payload."""
    parts = [len(transactions).to_bytes(4, "big")]
    for transaction in transactions:
        parts.append(len(transaction).to_bytes(4, "big"))
        parts.append(transaction)
    return b"".join(parts)


def decode_batch(payload: bytes) -> list[bytes]:
    """Inverse of :func:`encode_batch`."""
    if len(payload) < 4:
        raise ValueError("truncated batch payload")
    count = int.from_bytes(payload[:4], "big")
    offset = 4
    transactions = []
    for _ in range(count):
        if offset + 4 > len(payload):
            raise ValueError("truncated batch payload")
        length = int.from_bytes(payload[offset:offset + 4], "big")
        offset += 4
        if offset + length > len(payload):
            raise ValueError("truncated batch payload")
        transactions.append(payload[offset:offset + length])
        offset += length
    return transactions


def block_digest(block: list[bytes]) -> str:
    """Canonical digest of a decided block (for agreement checks)."""
    digest = hashlib.sha256()
    for transaction in block:
        digest.update(len(transaction).to_bytes(4, "big"))
        digest.update(transaction)
    return digest.hexdigest()


class ConsensusProtocol:
    """Base class for the per-node protocol instances."""

    name = "abstract"

    def __init__(self, ctx: ComponentContext, router: ComponentRouter,
                 config: Optional[ConsensusConfig] = None,
                 on_decide: Optional[DecideCallback] = None) -> None:
        self.ctx = ctx
        self.router = router
        self.config = config or ConsensusConfig()
        self.on_decide = on_decide
        self.decided = False
        self.block: Optional[list[bytes]] = None
        self.decide_time: Optional[float] = None
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------- API
    def propose(self, transactions: list[bytes]) -> None:  # pragma: no cover
        """Provide this node's transaction batch and start the protocol."""
        raise NotImplementedError

    # ----------------------------------------------------------------- decide
    def _finish(self, block: list[bytes]) -> None:
        if self.decided:
            return
        self.decided = True
        self.block = block
        self.decide_time = self.ctx.sim.now
        if self.on_decide is not None:
            self.on_decide(block)

    # ------------------------------------------------------------------ info
    @property
    def latency(self) -> Optional[float]:
        """Seconds from :meth:`propose` to decision (None until decided)."""
        if self.decide_time is None or self.started_at is None:
            return None
        return self.decide_time - self.started_at
