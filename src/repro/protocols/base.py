"""Shared protocol plumbing: configuration, batch encoding, the base class.

A consensus protocol instance lives on one node, is identified by an epoch
``tag``, consumes a proposal (a batch of transactions) via :meth:`propose`,
exchanges component messages through the node's transport/router, and
eventually calls its ``on_decide`` callback with the agreed block (a list of
transactions in a canonical order).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.components.base import ComponentContext, ComponentRouter

DecideCallback = Callable[[list[bytes]], None]

#: canonical names accepted by the testbed harness
PROTOCOL_NAMES = (
    "honeybadger-sc",
    "honeybadger-lc",
    "beat",
    "dumbo-sc",
    "dumbo-lc",
)


class ProtocolName:
    """Parsing/validation helpers for protocol names."""

    @staticmethod
    def validate(name: str) -> str:
        """Return the canonical name or raise ``ValueError``."""
        canonical = name.strip().lower()
        if canonical not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {name!r}; known: {PROTOCOL_NAMES}")
        return canonical

    @staticmethod
    def family(name: str) -> str:
        """The protocol family: honeybadger, beat or dumbo."""
        return ProtocolName.validate(name).split("-")[0]

    @staticmethod
    def coin(name: str) -> str:
        """The coin type: ``sc`` (shared), ``lc`` (local) or ``cp`` (coin flip)."""
        canonical = ProtocolName.validate(name)
        if canonical == "beat":
            return "cp"
        return canonical.split("-")[1]


@dataclass(frozen=True)
class ConsensusConfig:
    """Per-run protocol configuration."""

    #: epoch identifier (becomes the component tag)
    epoch: Any = 0
    #: whether proposals are threshold-encrypted (HoneyBadgerBFT / BEAT)
    use_threshold_encryption: bool = True
    #: cap on ABA rounds (safety net for bounded experiments)
    max_aba_rounds: int = 64


# --------------------------------------------------------------------------
# Transaction batch encoding: a deliberately simple, dependency-free format.
# --------------------------------------------------------------------------

def encode_batch(transactions: list[bytes]) -> bytes:
    """Serialise a list of transactions into a single proposal payload."""
    parts = [len(transactions).to_bytes(4, "big")]
    for transaction in transactions:
        parts.append(len(transaction).to_bytes(4, "big"))
        parts.append(transaction)
    return b"".join(parts)


def decode_batch(payload: bytes) -> list[bytes]:
    """Inverse of :func:`encode_batch`."""
    if len(payload) < 4:
        raise ValueError("truncated batch payload")
    count = int.from_bytes(payload[:4], "big")
    offset = 4
    transactions = []
    for _ in range(count):
        if offset + 4 > len(payload):
            raise ValueError("truncated batch payload")
        length = int.from_bytes(payload[offset:offset + 4], "big")
        offset += 4
        if offset + length > len(payload):
            raise ValueError("truncated batch payload")
        transactions.append(payload[offset:offset + length])
        offset += length
    return transactions


def block_digest(block: list[bytes]) -> str:
    """Canonical digest of a decided block (for agreement checks)."""
    digest = hashlib.sha256()
    for transaction in block:
        digest.update(len(transaction).to_bytes(4, "big"))
        digest.update(transaction)
    return digest.hexdigest()


@dataclass(frozen=True)
class InvariantWitness:
    """One node's decision evidence for the conformance checkers.

    The harness collects a witness per honest node after a run and feeds it
    to the :class:`repro.testbed.invariants.RunObserver`, which checks
    agreement (equal digests), total order (equal block sequences) and
    validity (committed transactions trace back to proposals) across nodes.
    """

    node_id: int
    decided: bool
    digest: Optional[str]
    decide_time: Optional[float]
    block: Optional[tuple[bytes, ...]]


class ConsensusProtocol:
    """Base class for the per-node protocol instances."""

    name = "abstract"

    def __init__(self, ctx: ComponentContext, router: ComponentRouter,
                 config: Optional[ConsensusConfig] = None,
                 on_decide: Optional[DecideCallback] = None) -> None:
        self.ctx = ctx
        self.router = router
        self.config = config or ConsensusConfig()
        self.on_decide = on_decide
        self.decided = False
        self.block: Optional[list[bytes]] = None
        self.decide_time: Optional[float] = None
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------- API
    def propose(self, transactions: list[bytes]) -> None:  # pragma: no cover
        """Provide this node's transaction batch and start the protocol."""
        raise NotImplementedError

    # ----------------------------------------------------- fault-injection API
    def inject_conflicting_proposal(self, transactions: list[bytes]) -> bool:
        """Byzantine hook: open this node's broadcast with a *second*,
        conflicting proposal (the equivocation attack).

        Called by the testbed on nodes assigned the ``equivocating-proposer``
        strategy, after the regular :meth:`propose`.  Protocols that support
        the attack override this and return True; the base implementation
        reports that the attack is not wired for this protocol.
        """
        return False

    # ------------------------------------------------------------ pipelining
    @property
    def pipeline_ready(self) -> bool:
        """Whether the *next* epoch may safely start disseminating.

        Streaming pipelining must not be able to change this epoch's decided
        block: the next epoch's radio traffic perturbs message timing on the
        shared channel, so this property must only turn True once the
        instance's remaining work is **content-deterministic** (timing can
        still move the decide time, never the decided bytes).  The base
        implementation is maximally conservative -- ready only once decided.
        HoneyBadger-style protocols override it to signal readiness when the
        common subset is locked (all ABAs decided), which is what lets epoch
        ``e + 1``'s RBC dissemination overlap epoch ``e``'s threshold
        decryption.
        """
        return self.decided

    # ------------------------------------------------------------- epoch GC
    def release(self) -> None:
        """Reclaim every per-epoch resource this instance allocated.

        Drops the instance's components, kind handlers and buffered messages
        from the router and its batching/reliability slots from the
        transport, keyed by the protocol's root ``tag`` (nested sub-tags such
        as Dumbo's CBC sets are covered via
        :func:`repro.core.packet.tag_in_scope`).  The streaming testbed calls
        this once *every* honest node of the domain has decided the epoch --
        after that point no peer can legitimately NACK-request the epoch's
        state, so memory stays O(pipeline window), not O(epochs run).
        The instance itself keeps its decision fields (``decided``, ``block``,
        ``decide_time``) so late metric reads stay valid.
        """
        tag = getattr(self, "tag", None)
        if tag is None:
            return
        self.router.release_tag(tag)
        self.ctx.transport.release_tag(tag)

    # -------------------------------------------------------- invariant hooks
    def witness(self) -> InvariantWitness:
        """This node's decision evidence for the conformance checkers."""
        return InvariantWitness(
            node_id=self.ctx.node_id, decided=self.decided,
            digest=block_digest(self.block) if self.block is not None else None,
            decide_time=self.decide_time,
            block=tuple(self.block) if self.block is not None else None)

    # ----------------------------------------------------------------- decide
    def _finish(self, block: list[bytes]) -> None:
        if self.decided:
            return
        self.decided = True
        self.block = block
        self.decide_time = self.ctx.sim.now
        if self.on_decide is not None:
            self.on_decide(block)

    # ------------------------------------------------------------------ info
    @property
    def latency(self) -> Optional[float]:
        """Seconds from :meth:`propose` to decision (None until decided)."""
        if self.decide_time is None or self.started_at is None:
            return None
        return self.decide_time - self.started_at
