"""Dumbo (Dumbo2 architecture) adapted to wireless networks (Fig. 7b).

Dumbo avoids HoneyBadgerBFT's N parallel ABA instances.  Per epoch, every
node:

1. contributes its batch to one of N parallel **PRBC** instances; each
   delivery comes with a threshold-signature proof that at least one honest
   node holds the proposal;
2. after the ``2f + 1`` fastest PRBCs complete, broadcasts the list of
   (index, proof) pairs through its **CBC_value** instance;
3. after ``2f + 1`` CBC_value instances complete, broadcasts the id list of
   those completed instances through its **CBC_commit** instance
   (a small-value CBC);
4. after ``2f + 1`` CBC_commit instances complete, derives the global string
   ``pi`` that fixes the candidate order, and
5. runs **serial ABA** over the candidates in ``pi`` order -- voting 1 for a
   candidate whose CBC_value it holds -- until one ABA outputs 1; the decided
   candidate's (index, proof) list defines the block: the union of the
   referenced PRBC proposals.

The shared-coin variant (``dumbo-sc``) derives ``pi`` from the threshold
common coin and runs ABA-SC; the local-coin variant (``dumbo-lc``) runs
ABA-LC and derives ``pi`` from the epoch digest (the unpredictability of the
candidate order against an adaptive adversary is outside the scope of the
wireless experiments).  Serial ABA instances use per-candidate coin managers
so that coin shares for later candidates are never released prematurely
(Section V-A).
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from repro.components.aba_bracha import BrachaAba
from repro.components.aba_cachin import CachinAba
from repro.components.base import ComponentContext, ComponentRouter
from repro.components.cbc import Cbc
from repro.components.cbc_small import CbcSmall
from repro.components.common_coin import CommonCoinManager
from repro.components.prbc import Prbc
from repro.core.packet import ComponentMessage
from repro.protocols.base import (
    ConsensusConfig,
    ConsensusProtocol,
    DecideCallback,
    decode_batch,
    encode_batch,
)


class Dumbo(ConsensusProtocol):
    """One node's Dumbo instance for one epoch."""

    name = "dumbo"

    def __init__(self, ctx: ComponentContext, router: ComponentRouter,
                 coin: str = "sc",
                 config: Optional[ConsensusConfig] = None,
                 on_decide: Optional[DecideCallback] = None) -> None:
        super().__init__(ctx, router, config, on_decide)
        if coin not in ("sc", "lc"):
            raise ValueError(f"unknown coin type {coin!r}; expected sc or lc")
        self.coin_type = coin
        self.tag = ("dumbo", self.config.epoch)
        self._value_tag = (self.tag, "value")
        self._commit_tag = (self.tag, "commit")

        self.prbc_values: dict[int, bytes] = {}
        self.prbc_proofs: dict[int, Any] = {}
        self.cbc_value_outputs: dict[int, list] = {}
        self.cbc_commit_outputs: dict[int, list] = {}
        self._value_cbc_started = False
        self._commit_cbc_started = False
        self._pi_started = False
        self.permutation: Optional[list[int]] = None
        self._candidate_cursor = 0
        self._candidate_rounds = 0
        self._aba_instances: dict[int, Any] = {}
        self._aba_decisions: dict[int, int] = {}
        self._pending_candidate: Optional[int] = None
        self._pi_coin: Optional[CommonCoinManager] = None

        self.prbc_instances: dict[int, Prbc] = {}
        self.cbc_value_instances: dict[int, Cbc] = {}
        self.cbc_commit_instances: dict[int, CbcSmall] = {}
        for index in range(ctx.num_nodes):
            prbc = Prbc(ctx, index, tag=self.tag,
                        on_output=self._make_callback(self._on_prbc_output, index))
            self.prbc_instances[index] = prbc
            router.register(prbc)
            value_cbc = Cbc(ctx, index, tag=self._value_tag,
                            on_output=self._make_callback(self._on_cbc_value_output,
                                                          index))
            self.cbc_value_instances[index] = value_cbc
            router.register(value_cbc)
            commit_cbc = CbcSmall(ctx, index, tag=self._commit_tag,
                                  on_output=self._make_callback(
                                      self._on_cbc_commit_output, index))
            self.cbc_commit_instances[index] = commit_cbc
            router.register(commit_cbc)
        if self.coin_type == "sc":
            self._pi_coin = CommonCoinManager(ctx, tag=(self.tag, "pi"),
                                              flavor="tsig", coin_name="pi")
            router.register_kind_handler("coin", (self.tag, "pi"),
                                         self._pi_coin.handle)

    @staticmethod
    def _make_callback(handler, index):
        return lambda _instance, output: handler(index, output)

    # ------------------------------------------------------------------- API
    def propose(self, transactions: list[bytes]) -> None:
        """Contribute this node's transaction batch via its PRBC instance."""
        self.started_at = self.ctx.sim.now
        self.prbc_instances[self.ctx.node_id].start(encode_batch(transactions))

    def inject_conflicting_proposal(self, transactions: list[bytes]) -> bool:
        """Equivocation attack: broadcast a second INITIAL for this node's PRBC.

        PRBC inherits RBC's echo-quorum rule, so honest nodes either converge
        on one of the two proposals or exclude this node's instance; the DONE
        proof can only form for a value ``2f + 1`` nodes echoed.
        """
        value = encode_batch(transactions)
        message = ComponentMessage(
            kind=Prbc.kind, instance=self.ctx.node_id, phase="initial",
            sender=self.ctx.node_id, payload={"value": value},
            payload_bytes=len(value), tag=self.tag)
        self.ctx.transport.send(message)
        return True

    # ------------------------------------------------------------------ PRBC
    def _on_prbc_output(self, index: int, output: tuple) -> None:
        value, proof = output
        if index in self.prbc_values:
            return
        self.prbc_values[index] = value
        self.prbc_proofs[index] = proof
        if (not self._value_cbc_started
                and len(self.prbc_values) >= self.ctx.quorum):
            self._value_cbc_started = True
            completed = sorted(self.prbc_values)[: self.ctx.quorum]
            proposal = [(i, self.prbc_proofs[i]) for i in completed]
            self.cbc_value_instances[self.ctx.node_id].start(proposal)
        self._try_assemble()

    # ------------------------------------------------------------- CBC_value
    def _on_cbc_value_output(self, index: int, output: tuple) -> None:
        vector, _certificate = output
        if index in self.cbc_value_outputs:
            return
        self.cbc_value_outputs[index] = list(vector)
        if (not self._commit_cbc_started
                and len(self.cbc_value_outputs) >= self.ctx.quorum):
            self._commit_cbc_started = True
            completed = sorted(self.cbc_value_outputs)[: self.ctx.quorum]
            self.cbc_commit_instances[self.ctx.node_id].start(completed)
        self._try_assemble()

    # ------------------------------------------------------------ CBC_commit
    def _on_cbc_commit_output(self, index: int, output: tuple) -> None:
        id_list, _certificate = output
        if index in self.cbc_commit_outputs:
            return
        self.cbc_commit_outputs[index] = list(id_list)
        if (not self._pi_started
                and len(self.cbc_commit_outputs) >= self.ctx.quorum):
            self._pi_started = True
            self._derive_pi()

    # --------------------------------------------------------------- global pi
    def _derive_pi(self) -> None:
        if self.coin_type == "sc" and self._pi_coin is not None:
            self._pi_coin.request(0, lambda _round, value: self._set_pi(value))
        else:
            digest = hashlib.sha256(f"dumbo-pi|{self.tag}".encode()).digest()
            self._set_pi(int.from_bytes(digest, "big"))

    def _set_pi(self, seed: int) -> None:
        if self.permutation is not None:
            return
        order = sorted(
            range(self.ctx.num_nodes),
            key=lambda i: hashlib.sha256(f"{seed}|{i}".encode()).hexdigest())
        self.permutation = order
        self._candidate_cursor = 0
        self._start_next_candidate()

    # ------------------------------------------------------------- serial ABA
    def _start_next_candidate(self) -> None:
        if self.decided or self.permutation is None:
            return
        if self._candidate_cursor >= len(self.permutation):
            # No candidate accepted this sweep; retry (more CBC_value outputs
            # will have arrived, so votes only improve).
            self._candidate_rounds += 1
            if self._candidate_rounds > self.ctx.num_nodes:
                return
            self._candidate_cursor = 0
            self._aba_decisions.clear()
        candidate = self.permutation[self._candidate_cursor]
        slot = self._candidate_rounds * self.ctx.num_nodes + self._candidate_cursor
        aba = self._make_serial_aba(slot)
        aba.on_output = self._make_callback(self._on_aba_output, slot)
        self._aba_instances[slot] = aba
        self.router.register(aba)
        vote = 1 if candidate in self.cbc_value_outputs else 0
        aba.start(vote)

    def _make_serial_aba(self, slot: int):
        if self.coin_type == "lc":
            return BrachaAba(self.ctx, slot, tag=(self.tag, "aba"),
                             max_rounds=self.config.max_aba_rounds)
        coin = CommonCoinManager(self.ctx, tag=(self.tag, "aba", slot),
                                 flavor="tsig", coin_name=f"serial{slot}")
        self.router.register_kind_handler("coin", (self.tag, "aba", slot),
                                          coin.handle)
        return CachinAba(self.ctx, slot, coin=coin, tag=(self.tag, "aba"),
                         max_rounds=self.config.max_aba_rounds)

    def _on_aba_output(self, slot: int, decision: int) -> None:
        if slot in self._aba_decisions:
            return
        self._aba_decisions[slot] = decision
        if self.decided:
            return
        candidate = self.permutation[slot % self.ctx.num_nodes]
        if decision == 1:
            self._pending_candidate = candidate
            self._try_assemble()
        else:
            self._candidate_cursor += 1
            self._start_next_candidate()

    # ------------------------------------------------------------------ block
    def _try_assemble(self) -> None:
        if self.decided or self._pending_candidate is None:
            return
        candidate = self._pending_candidate
        vector = self.cbc_value_outputs.get(candidate)
        if vector is None:
            return  # the candidate's CBC_value will arrive via retransmission
        indices = [index for index, _proof in vector]
        if any(index not in self.prbc_values for index in indices):
            return  # missing PRBC proposals arrive via retransmission
        block: list[bytes] = []
        for index in sorted(indices):
            block.extend(decode_batch(self.prbc_values[index]))
        self._finish(_dedupe(block))


def _dedupe(transactions: list[bytes]) -> list[bytes]:
    """Drop duplicate transactions while keeping the canonical order."""
    seen: set[bytes] = set()
    unique = []
    for transaction in sorted(transactions):
        if transaction not in seen:
            seen.add(transaction)
            unique.append(transaction)
    return unique
