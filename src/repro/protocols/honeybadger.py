"""HoneyBadgerBFT adapted to wireless networks (Fig. 7a).

Per epoch, every node:

1. threshold-encrypts its transaction batch (censorship resilience),
2. contributes the ciphertext to an Asynchronous Common Subset built from N
   parallel RBC instances and N parallel ABA instances,
3. once the subset is fixed, broadcasts decryption shares for every included
   ciphertext, and
4. decrypts with ``f + 1`` shares and outputs the union of the decrypted
   batches in a canonical order.

Two variants are provided, matching the paper's testbed:

* ``HoneyBadger(coin="sc")`` -- shared-coin ABA (ABA-SC, threshold signatures);
* ``HoneyBadger(coin="lc")`` -- local-coin ABA (ABA-LC, Bracha's protocol).

BEAT0 (:class:`repro.protocols.beat.Beat`) reuses this class with the
threshold coin-flipping ABA (ABA-CP).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.components.aba_bracha import BrachaAba
from repro.components.aba_cachin import CachinAba
from repro.components.aba_coinflip import CoinFlipAba
from repro.components.base import ComponentContext, ComponentRouter
from repro.components.common_coin import CommonCoinManager
from repro.components.rbc import BrachaRbc
from repro.core.packet import ComponentMessage
from repro.crypto.threshold_enc import ciphertext_from_bytes, ciphertext_to_bytes
from repro.protocols.acs import CommonSubset
from repro.protocols.base import (
    ConsensusConfig,
    ConsensusProtocol,
    DecideCallback,
    decode_batch,
    encode_batch,
)


class HoneyBadger(ConsensusProtocol):
    """One node's HoneyBadgerBFT instance for one epoch."""

    name = "honeybadger"
    DEC_KIND = "acs_dec"

    def __init__(self, ctx: ComponentContext, router: ComponentRouter,
                 coin: str = "sc",
                 config: Optional[ConsensusConfig] = None,
                 on_decide: Optional[DecideCallback] = None) -> None:
        super().__init__(ctx, router, config, on_decide)
        if coin not in ("sc", "lc", "cp"):
            raise ValueError(f"unknown coin type {coin!r}; expected sc, lc or cp")
        self.coin_type = coin
        self.tag = ("hb", self.config.epoch)
        self.coin_manager: Optional[CommonCoinManager] = None
        if coin in ("sc", "cp"):
            flavor = "tsig" if coin == "sc" else "flip"
            self.coin_manager = CommonCoinManager(ctx, tag=self.tag,
                                                  flavor=flavor, coin_name="hb")
            router.register_kind_handler("coin", self.tag, self.coin_manager.handle)
        router.register_kind_handler(self.DEC_KIND, self.tag, self._on_dec_share)
        self.acs = CommonSubset(
            ctx, router, self.tag,
            rbc_factory=lambda index: BrachaRbc(ctx, index, tag=self.tag),
            aba_factory=self._make_aba,
            on_output=self._on_acs_output)
        self._acs_output: Optional[dict[int, bytes]] = None
        self._dec_shares: dict[int, dict[int, Any]] = {}
        #: per ACS index, the shares that verified correctly (each share is
        #: verified at most once, when its ciphertext is known)
        self._valid_dec_shares: dict[int, dict[int, Any]] = {}
        self._ciphertexts: dict[int, Any] = {}
        self._decrypted: dict[int, list[bytes]] = {}
        self._dec_share_sent = False

    # ------------------------------------------------------------- components
    def _make_aba(self, index: int):
        if self.coin_type == "lc":
            return BrachaAba(self.ctx, index, tag=self.tag,
                             max_rounds=self.config.max_aba_rounds)
        aba_class = CachinAba if self.coin_type == "sc" else CoinFlipAba
        return aba_class(self.ctx, index, coin=self.coin_manager, tag=self.tag,
                         max_rounds=self.config.max_aba_rounds)

    # ------------------------------------------------------------------- API
    def propose(self, transactions: list[bytes]) -> None:
        """Encrypt and contribute this node's transaction batch."""
        self.started_at = self.ctx.sim.now
        payload = encode_batch(transactions)
        if self.config.use_threshold_encryption:
            label = f"hb|{self.config.epoch}|{self.ctx.node_id}".encode()
            ciphertext = self.ctx.suite.encrypt(payload, label)
            value = ciphertext_to_bytes(ciphertext)
        else:
            value = payload
        self.acs.propose(value)

    def inject_conflicting_proposal(self, transactions: list[bytes]) -> bool:
        """Equivocation attack: broadcast a second INITIAL for this node's RBC.

        Honest RBC instances echo whichever INITIAL they see first and only
        deliver a value backed by a ``2f + 1`` echo quorum, so either one of
        the two proposals wins everywhere or the instance never delivers and
        ACS excludes this node -- agreement must hold either way.  The attack
        mirrors what :meth:`propose` sends, bypassing the local RBC state.
        """
        payload = encode_batch(transactions)
        if self.config.use_threshold_encryption:
            label = f"hb|{self.config.epoch}|{self.ctx.node_id}|equiv".encode()
            value = ciphertext_to_bytes(self.ctx.suite.encrypt(payload, label))
        else:
            value = payload
        message = ComponentMessage(
            kind=BrachaRbc.kind, instance=self.ctx.node_id, phase="initial",
            sender=self.ctx.node_id, payload={"value": value},
            payload_bytes=len(value), tag=self.tag)
        self.ctx.transport.send(message)
        return True

    # ------------------------------------------------------------ pipelining
    @property
    def pipeline_ready(self) -> bool:
        """Ready for the next epoch once this node's common subset is locked.

        After ``_on_acs_output`` the decided block is a pure function of the
        locked subset and the dealt keys (any ``f + 1`` honest decryption
        shares interpolate to the same plaintext), so later radio traffic can
        delay the decision but never change its bytes -- the condition the
        streaming pipeline's safety rests on.
        """
        return self.decided or self._acs_output is not None

    # ------------------------------------------------------------- ACS output
    def _on_acs_output(self, output: dict[int, bytes]) -> None:
        self._acs_output = output
        if not self.config.use_threshold_encryption:
            self._assemble_plain_block(output)
            return
        for index, value in output.items():
            self._ciphertexts[index] = ciphertext_from_bytes(value)
        self._broadcast_dec_shares()
        # Verify the shares buffered before the ACS output arrived (their
        # ciphertexts were unknown until now), in arrival order.
        for index in self._ciphertexts:
            for sender, share in list(self._dec_shares.get(index, {}).items()):
                self._ingest_dec_share(index, sender, share)
        self._maybe_assemble_block()

    def _assemble_plain_block(self, output: dict[int, bytes]) -> None:
        block: list[bytes] = []
        for index in sorted(output):
            block.extend(decode_batch(output[index]))
        self._finish(_dedupe(block))

    # ------------------------------------------------------ threshold decrypt
    def _broadcast_dec_shares(self) -> None:
        if self._dec_share_sent or self._acs_output is None:
            return
        self._dec_share_sent = True
        for index, ciphertext in self._ciphertexts.items():
            self.ctx.transport.activate(self.DEC_KIND, self.tag, index)
            share = self.ctx.suite.decryption_share(ciphertext)
            self._dec_shares.setdefault(index, {})[self.ctx.node_id] = share
            message = ComponentMessage(
                kind=self.DEC_KIND, instance=index, phase="share",
                sender=self.ctx.node_id, payload={"share": share},
                share_bytes=self.ctx.suite.threshold_share_bytes, tag=self.tag)
            self.ctx.transport.send(message)

    def _on_dec_share(self, message: ComponentMessage) -> None:
        if message.phase != "share":
            return
        index = message.instance
        share = message.payload.get("share")
        if share is None:
            return
        shares = self._dec_shares.setdefault(index, {})
        if message.sender in shares:
            return
        shares[message.sender] = share
        if self._acs_output is None:
            # The ciphertext for this index is not known yet; the share is
            # buffered and verified once the ACS output arrives.
            return
        self._ingest_dec_share(index, message.sender, share)
        self._maybe_assemble_block()

    def _ingest_dec_share(self, index: int, sender: int, share: Any) -> None:
        """Verify one share (at most once) and decrypt when a quorum forms.

        The previous implementation re-verified *every* buffered share of
        *every* undecrypted ciphertext on *every* share arrival -- O(n^4)
        verifications per node per epoch, the dominant cost of large-n runs.
        Shares are now verified exactly once, on the event that delivers
        them, and only their own index is re-examined; the decrypted payload
        (any ``f + 1`` valid shares interpolate to the same plaintext) and
        the RNG stream are unchanged.
        """
        if self.decided or index in self._decrypted:
            return
        ciphertext = self._ciphertexts.get(index)
        if ciphertext is None:
            return
        valid = self._valid_dec_shares.setdefault(index, {})
        if sender in valid:
            return
        if sender == self.ctx.node_id:
            valid[sender] = share
        elif self.ctx.suite.verify_decryption_share(ciphertext, share):
            valid[sender] = share
        if len(valid) < self.ctx.small_quorum:
            return
        # Every share in ``valid`` already passed per-share verification.
        payload = self.ctx.suite.decrypt(ciphertext, list(valid.values()),
                                         verify=False)
        try:
            self._decrypted[index] = decode_batch(payload)
        except ValueError:
            # A Byzantine proposer contributed garbage; include nothing.
            self._decrypted[index] = []
        self.ctx.transport.mark_complete(self.DEC_KIND, self.tag, index)

    def _maybe_assemble_block(self) -> None:
        if self.decided or self._acs_output is None:
            return
        if len(self._decrypted) == len(self._ciphertexts):
            block: list[bytes] = []
            for index in sorted(self._decrypted):
                block.extend(self._decrypted[index])
            self._finish(_dedupe(block))


def _dedupe(transactions: list[bytes]) -> list[bytes]:
    """Drop duplicate transactions while keeping the canonical order."""
    seen: set[bytes] = set()
    unique = []
    for transaction in sorted(transactions):
        if transaction not in seen:
            seen.add(transaction)
            unique.append(transaction)
    return unique
