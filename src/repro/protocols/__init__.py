"""Asynchronous BFT consensus protocols (the paper's consensus layer, Fig. 9a).

Five protocols are built from the component layer, matching the paper's
testbed:

* ``honeybadger-sc`` -- HoneyBadgerBFT with shared-coin ABA (ABA-SC);
* ``honeybadger-lc`` -- HoneyBadgerBFT with local-coin ABA (ABA-LC);
* ``beat``           -- BEAT0: HoneyBadgerBFT structure with threshold
  coin-flipping ABA (ABA-CP);
* ``dumbo-sc``       -- Dumbo2 (PRBC + CBC_value + CBC_commit + serial ABA)
  with shared-coin ABA;
* ``dumbo-lc``       -- Dumbo2 with local-coin ABA.

Each runs either on the ConsensusBatcher transport or on the unbatched
baseline transport; the protocol logic is identical (Section III-A.2), so
the comparison isolates the effect of batching.  The multi-hop construction
of Section V-B (per-cluster local consensus + leader-level global consensus)
is provided by :mod:`repro.protocols.multihop`.
"""

from repro.protocols.base import (
    ConsensusConfig,
    ConsensusProtocol,
    ProtocolName,
    encode_batch,
    decode_batch,
    PROTOCOL_NAMES,
)
from repro.protocols.acs import CommonSubset
from repro.protocols.honeybadger import HoneyBadger
from repro.protocols.beat import Beat
from repro.protocols.dumbo import Dumbo
from repro.protocols.multihop import MultiHopResult

__all__ = [
    "ConsensusConfig",
    "ConsensusProtocol",
    "ProtocolName",
    "PROTOCOL_NAMES",
    "encode_batch",
    "decode_batch",
    "CommonSubset",
    "HoneyBadger",
    "Beat",
    "Dumbo",
    "MultiHopResult",
]
