"""Asynchronous Common Subset (ACS) -- the core of HoneyBadgerBFT and BEAT.

ACS lets every node contribute one value and agree on a common subset of at
least ``N - f`` of them.  The HoneyBadgerBFT construction (Fig. 2a) runs N
parallel RBC instances (one per proposer) and N parallel ABA instances (one
per RBC) that vote on whether the corresponding proposal makes it into the
subset.

The wireless adaptation (Section V-A, Fig. 7a) changes *when* the ABAs start:
instead of starting ABA_j individually as RBC_j delivers, a node waits for the
``2f + 1`` fastest RBC instances to deliver and then starts **all** N ABA
instances simultaneously -- voting 1 for the delivered instances and 0 for the
rest.  This keeps the batched ABA packets aligned and denies Byzantine nodes
early access to the round coin.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.components.base import Component, ComponentContext, ComponentRouter

AcsOutputCallback = Callable[[dict[int, bytes]], None]
AbaFactory = Callable[[int], Component]
RbcFactory = Callable[[int], Component]


class CommonSubset:
    """One node's ACS instance."""

    def __init__(self, ctx: ComponentContext, router: ComponentRouter, tag: Any,
                 rbc_factory: RbcFactory, aba_factory: AbaFactory,
                 on_output: Optional[AcsOutputCallback] = None,
                 simultaneous_aba_start: bool = True) -> None:
        self.ctx = ctx
        self.router = router
        self.tag = tag
        self.on_output = on_output
        self.simultaneous_aba_start = simultaneous_aba_start
        self.rbc_values: dict[int, bytes] = {}
        self.aba_decisions: dict[int, int] = {}
        self.abas_started = False
        self.output: Optional[dict[int, bytes]] = None
        self.completed = False

        self.rbc_instances: dict[int, Component] = {}
        self.aba_instances: dict[int, Component] = {}
        for index in range(ctx.num_nodes):
            rbc = rbc_factory(index)
            rbc.on_output = self._make_rbc_callback(index)
            self.rbc_instances[index] = rbc
            router.register(rbc)
            aba = aba_factory(index)
            aba.on_output = self._make_aba_callback(index)
            self.aba_instances[index] = aba
            router.register(aba)

    # ------------------------------------------------------------------- API
    def propose(self, value: bytes) -> None:
        """Contribute this node's value (starts its own RBC instance)."""
        self.rbc_instances[self.ctx.node_id].start(value)

    # --------------------------------------------------------------- RBC side
    def _make_rbc_callback(self, index: int):
        return lambda _instance, value: self._on_rbc_output(index, value)

    def _on_rbc_output(self, index: int, value: bytes) -> None:
        if index in self.rbc_values:
            return
        self.rbc_values[index] = value
        if not self.abas_started:
            if self.simultaneous_aba_start:
                if len(self.rbc_values) >= self.ctx.quorum:
                    self._start_all_abas()
            else:
                # Wired-style behaviour: vote 1 for this ABA immediately.
                self.aba_instances[index].start(1)
        self._maybe_output()

    def _start_all_abas(self) -> None:
        """Start every ABA instance at once (the wireless rule of Fig. 7a)."""
        self.abas_started = True
        delivered = set(self.rbc_values)
        for index, aba in self.aba_instances.items():
            if not getattr(aba, "_started", False):
                aba.start(1 if index in delivered else 0)

    # --------------------------------------------------------------- ABA side
    def _make_aba_callback(self, index: int):
        return lambda _instance, decision: self._on_aba_output(index, decision)

    def _on_aba_output(self, index: int, decision: int) -> None:
        if index in self.aba_decisions:
            return
        self.aba_decisions[index] = decision
        # Standard ACS rule: once N - f ABAs have output 1, vote 0 everywhere
        # we have not voted yet (covered by the simultaneous start in the
        # wireless configuration, but needed for the wired-style mode).
        ones = sum(1 for value in self.aba_decisions.values() if value == 1)
        if not self.abas_started and ones >= self.ctx.num_nodes - self.ctx.faults:
            self._start_all_abas()
        self._maybe_output()

    # ----------------------------------------------------------------- output
    def _maybe_output(self) -> None:
        if self.completed:
            return
        if len(self.aba_decisions) < self.ctx.num_nodes:
            return
        accepted = [index for index, decision in self.aba_decisions.items()
                    if decision == 1]
        if any(index not in self.rbc_values for index in accepted):
            # ABA said yes but the proposal has not arrived yet; RBC totality
            # plus NACK retransmission guarantee it eventually will.
            return
        self.output = {index: self.rbc_values[index] for index in sorted(accepted)}
        self.completed = True
        if self.on_output is not None:
            self.on_output(self.output)
