"""Provable reliable broadcast (PRBC) -- Dumbo's broadcast primitive.

PRBC extends RBC with a DONE phase (Fig. 1a, blue lines): once a node
delivers the RBC value, it broadcasts a threshold-signature share over the
instance id; ``2f + 1`` shares combine into a succinct *proof* that at least
``f + 1`` honest nodes hold the proposal.  Dumbo uses these proofs to decide
which proposals can safely be referenced by later stages without shipping the
proposals themselves.

Output: ``(value, proof)`` where ``proof`` is the combined threshold
signature (or ``None`` until it is available).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.components.base import Component, ComponentContext, OutputCallback, sha256_hex
from repro.core.packet import ComponentMessage
from repro.crypto.threshold_sig import ThresholdSigError


class Prbc(Component):
    """One PRBC instance (RBC + DONE proof)."""

    kind = "prbc"

    def __init__(self, ctx: ComponentContext, instance: int, tag: Any = None,
                 on_output: Optional[OutputCallback] = None,
                 proposer: Optional[int] = None) -> None:
        super().__init__(ctx, instance, tag, on_output)
        self.proposer = instance if proposer is None else proposer
        self.value: Optional[bytes] = None
        self.value_hash: Optional[str] = None
        self.proof: Any = None
        self._echoes: dict[str, set[int]] = {}
        self._readies: dict[str, set[int]] = {}
        self._echo_sent = False
        self._ready_sent = False
        self._done_sent = False
        self._pending_deliver_hash: Optional[str] = None
        self._rbc_delivered = False
        self._done_shares: dict[int, Any] = {}
        #: shares whose proof checked out (each verified at most once)
        self._valid_done_shares: dict[int, Any] = {}

    # ------------------------------------------------------------------ start
    def start(self, value: bytes) -> None:
        """Proposer entry point: broadcast the proposal."""
        if self.ctx.node_id != self.proposer:
            raise ValueError(
                f"node {self.ctx.node_id} is not the proposer of {self.describe()}")
        self.send("initial", {"value": value}, payload_bytes=len(value))

    # ----------------------------------------------------------------- handle
    def handle(self, message: ComponentMessage) -> None:
        """Process INITIAL / ECHO / READY / DONE messages."""
        if message.phase == "initial":
            self._on_initial(message)
        elif message.phase == "echo":
            self._on_echo(message)
        elif message.phase == "ready":
            self._on_ready(message)
        elif message.phase == "done":
            self._on_done(message)

    # ------------------------------------------------------------ RBC phases
    def _on_initial(self, message: ComponentMessage) -> None:
        if message.sender != self.proposer:
            return
        value = message.payload.get("value")
        if value is None or self.value is not None:
            self._check_quorums()
            return
        self.value = value
        self.value_hash = sha256_hex(value)
        if not self._echo_sent:
            self._echo_sent = True
            self.send("echo", {"hash": self.value_hash})
        self._check_quorums()

    def _on_echo(self, message: ComponentMessage) -> None:
        value_hash = message.payload.get("hash")
        if value_hash is None:
            return
        self._echoes.setdefault(value_hash, set()).add(message.sender)
        self._check_quorums()

    def _on_ready(self, message: ComponentMessage) -> None:
        value_hash = message.payload.get("hash")
        if value_hash is None:
            return
        self._readies.setdefault(value_hash, set()).add(message.sender)
        self._check_quorums()

    def _check_quorums(self) -> None:
        for value_hash, echoers in self._echoes.items():
            if len(echoers) >= self.ctx.quorum and not self._ready_sent:
                self._send_ready(value_hash)
        for value_hash, readiers in self._readies.items():
            if len(readiers) >= self.ctx.small_quorum and not self._ready_sent:
                self._send_ready(value_hash)
            if len(readiers) >= self.ctx.quorum:
                self._pending_deliver_hash = value_hash
        self._maybe_rbc_deliver()

    def _send_ready(self, value_hash: str) -> None:
        self._ready_sent = True
        self.send("ready", {"hash": value_hash})

    # ------------------------------------------------------------- DONE phase
    def _proof_message(self) -> bytes:
        return f"prbc|{self.tag}|{self.instance}|{self.value_hash}".encode()

    def _maybe_rbc_deliver(self) -> None:
        if self._rbc_delivered or self._pending_deliver_hash is None:
            return
        if self.value is None or self.value_hash != self._pending_deliver_hash:
            return
        self._rbc_delivered = True
        if not self._done_sent:
            self._done_sent = True
            share = self.ctx.suite.tsig_share(self._proof_message())
            self._done_shares[self.ctx.node_id] = share
            self.send("done", {"share": share, "hash": self.value_hash},
                      share_bytes=self.ctx.suite.threshold_share_bytes)
        # Shares buffered before RBC delivery could not be verified (their
        # proof message depends on the delivered value hash); ingest them now.
        for sender, share in list(self._done_shares.items()):
            self._ingest_done_share(sender, share)
        self._maybe_complete()

    def _on_done(self, message: ComponentMessage) -> None:
        share = message.payload.get("share")
        if share is None or message.sender in self._done_shares:
            return
        self._done_shares[message.sender] = share
        if self._rbc_delivered:
            self._ingest_done_share(message.sender, share)
            self._maybe_complete()

    def _ingest_done_share(self, sender: int, share: Any) -> None:
        """Verify one DONE share at most once (the value hash is known).

        The previous implementation re-verified every buffered share on every
        DONE arrival -- quadratic in n per instance, cubic across the n
        parallel instances Dumbo runs.
        """
        if sender in self._valid_done_shares:
            return
        if sender == self.ctx.node_id \
                or self.ctx.suite.tsig_verify_share(self._proof_message(), share):
            self._valid_done_shares[sender] = share

    def _maybe_complete(self) -> None:
        if self.completed or not self._rbc_delivered or self.value is None:
            return
        if len(self._valid_done_shares) < self.ctx.quorum:
            return
        try:
            # Every share in the set already passed per-share verification,
            # so the combine can skip its (redundant) batch re-verification.
            self.proof = self.ctx.suite.tsig_combine(
                self._proof_message(), list(self._valid_done_shares.values()),
                verify=False)
        except ThresholdSigError:
            return
        self.complete((self.value, self.proof))
