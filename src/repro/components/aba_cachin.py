"""Shared-coin asynchronous Byzantine agreement -- the paper's ABA-SC.

This is the round-based binary agreement used by HoneyBadgerBFT (Mostefaoui
et al.'s protocol instantiated with a Cachin-Kursawe-Shoup threshold common
coin), matching Fig. 1d: each round has a BVAL phase, an AUX phase and a
SHARE (coin) phase, all N-to-N, for O(N^2) messages per round.

Round ``r`` with estimate ``est``:

1. broadcast ``BVAL(r, est)``;
2. on ``f + 1`` BVALs for a value ``b`` not yet relayed, relay ``BVAL(r, b)``;
   on ``2f + 1`` BVALs, add ``b`` to ``bin_values[r]``;
3. when ``bin_values[r]`` first becomes non-empty, broadcast ``AUX(r, w)``
   for some ``w`` in it;
4. once ``N - f`` AUX messages carry values inside ``bin_values[r]``, release
   a coin share and reveal the round coin ``s``;
5. if the AUX value set is a single value ``b``: adopt ``b`` and decide if
   ``b == s``; otherwise adopt ``s``; proceed to round ``r + 1``.

All parallel instances of the same protocol scope share the round coin
through a single :class:`~repro.components.common_coin.CommonCoinManager`
(the paper's Technical Challenge III resolution for wireless networks);
serial instances (Dumbo) use per-instance managers so coins are never
revealed prematurely.

The DECIDED-notice termination helper mirrors the one in
:class:`~repro.components.aba_bracha.BrachaAba`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.components.base import Component, ComponentContext, OutputCallback
from repro.components.common_coin import CommonCoinManager
from repro.core.packet import ComponentMessage


@dataclass
class _RoundState:
    """Per-round BVAL/AUX bookkeeping."""

    bval_sent: set[int] = field(default_factory=set)
    bval_received: dict[int, set[int]] = field(default_factory=dict)
    bin_values: set[int] = field(default_factory=set)
    aux_sent: bool = False
    aux_received: dict[int, int] = field(default_factory=dict)
    #: number of AUX senders whose value is in bin_values, maintained
    #: incrementally (recounted when bin_values grows) -- recomputing the
    #: support set per message is O(n) and made large-n runs O(n^4)
    support_count: int = 0
    coin_requested: bool = False
    coin_value: Optional[int] = None
    finished: bool = False


class CachinAba(Component):
    """One shared-coin ABA instance deciding a single bit."""

    kind = "aba_sc"
    coin_flavor = "tsig"

    def __init__(self, ctx: ComponentContext, instance: int,
                 coin: CommonCoinManager, tag: Any = None,
                 on_output: Optional[OutputCallback] = None,
                 max_rounds: int = 64) -> None:
        super().__init__(ctx, instance, tag, on_output)
        self.coin = coin
        self.max_rounds = max_rounds
        self.estimate: Optional[int] = None
        self.round = 0
        self.decided_value: Optional[int] = None
        self.rounds_executed = 0
        self._rounds: dict[int, _RoundState] = {}
        self._decided_notices: dict[int, set[int]] = {}
        self._decided_sent = False
        self._started = False
        self._halted = False

    # ------------------------------------------------------------------ start
    def start(self, value: int) -> None:
        """Provide this node's binary input and start round 0."""
        if self._started:
            return
        if value not in (0, 1):
            raise ValueError(f"ABA input must be 0 or 1, got {value!r}")
        self._started = True
        self.estimate = value
        self._broadcast_bval(self.round, value)

    # ----------------------------------------------------------------- handle
    def handle(self, message: ComponentMessage) -> None:
        """Process BVAL / AUX / DECIDED messages."""
        if message.phase == "bval":
            self._on_bval(message)
        elif message.phase == "aux":
            self._on_aux(message)
        elif message.phase == "decided":
            self._on_decided(message)

    # ------------------------------------------------------------------ BVAL
    def _state(self, round_number: int) -> _RoundState:
        return self._rounds.setdefault(round_number, _RoundState())

    def _broadcast_bval(self, round_number: int, value: int) -> None:
        state = self._state(round_number)
        if value in state.bval_sent:
            return
        state.bval_sent.add(value)
        received = state.bval_received.setdefault(value, set())
        newly_counted = self.ctx.node_id not in received
        received.add(self.ctx.node_id)
        self.send("bval", {"value": value}, round_number=round_number,
                  payload_bytes=1, slot=value)
        if newly_counted:
            # Our own vote can complete a quorum; evaluate the transitions
            # here (the local echo of the send is a duplicate and skips them).
            self._after_bval_counted(round_number, state, value)

    def _on_bval(self, message: ComponentMessage) -> None:
        value = message.payload.get("value")
        if value not in (0, 1):
            return
        round_number = message.round
        state = self._state(round_number)
        received = state.bval_received.setdefault(value, set())
        if message.sender in received:
            return  # duplicate delivery (NACK repair); state is unchanged
        received.add(message.sender)
        self._after_bval_counted(round_number, state, value)

    def _after_bval_counted(self, round_number: int, state: _RoundState,
                            value: int) -> None:
        """Quorum transitions after ``value`` gained a BVAL supporter."""
        count = len(state.bval_received[value])
        if count >= self.ctx.small_quorum and value not in state.bval_sent:
            self._broadcast_bval(round_number, value)
        if count >= self.ctx.quorum and value not in state.bin_values:
            state.bin_values.add(value)
            # AUX entries buffered before their value entered bin_values now
            # count as support.
            state.support_count += sum(
                1 for aux_value in state.aux_received.values()
                if aux_value == value)
            self._maybe_send_aux(round_number, state)
        self._maybe_reveal_coin(round_number, state)

    # ------------------------------------------------------------------- AUX
    def _maybe_send_aux(self, round_number: int, state: _RoundState) -> None:
        if state.aux_sent or not state.bin_values:
            return
        state.aux_sent = True
        value = next(iter(sorted(state.bin_values)))
        self._record_aux(state, self.ctx.node_id, value)
        self.send("aux", {"value": value}, round_number=round_number,
                  payload_bytes=1)
        self._maybe_reveal_coin(round_number, state)

    def _on_aux(self, message: ComponentMessage) -> None:
        value = message.payload.get("value")
        if value not in (0, 1):
            return
        round_number = message.round
        state = self._state(round_number)
        if message.sender in state.aux_received:
            return  # duplicate delivery; first value per sender counts
        self._record_aux(state, message.sender, value)
        self._maybe_reveal_coin(round_number, state)

    @staticmethod
    def _record_aux(state: _RoundState, sender: int, value: int) -> None:
        if sender in state.aux_received:
            return
        state.aux_received[sender] = value
        if value in state.bin_values:
            state.support_count += 1

    # ------------------------------------------------------------------ coin
    def _aux_support(self, state: _RoundState) -> tuple[int, set[int]]:
        """Count AUX senders whose value is in bin_values; return their values."""
        values = {value for value in state.aux_received.values()
                  if value in state.bin_values}
        return state.support_count, values

    def _maybe_reveal_coin(self, round_number: int, state: _RoundState) -> None:
        if self._halted or round_number != self.round or state.finished:
            return
        if state.coin_requested:
            return
        if state.support_count < self.ctx.num_nodes - self.ctx.faults:
            return
        state.coin_requested = True
        self.coin.request(self._coin_round_id(round_number),
                          lambda _rid, coin: self._on_coin(round_number, coin))

    def _coin_round_id(self, round_number: int) -> int:
        return round_number

    def _on_coin(self, round_number: int, coin_value: int) -> None:
        state = self._state(round_number)
        state.coin_value = coin_value
        self._finish_round(round_number, state)

    # ----------------------------------------------------------- round logic
    def _finish_round(self, round_number: int, state: _RoundState) -> None:
        if state.finished or round_number != self.round or self._halted:
            return
        support, values = self._aux_support(state)
        if support < self.ctx.num_nodes - self.ctx.faults or state.coin_value is None:
            return
        state.finished = True
        self.rounds_executed += 1
        coin = state.coin_value
        if len(values) == 1:
            value = next(iter(values))
            self.estimate = value
            if value == coin:
                self._decide(value)
        else:
            self.estimate = coin if self.decided_value is None else self.decided_value
        if self._halted:
            return
        next_round = round_number + 1
        if next_round >= self.max_rounds:
            self._decide(self.estimate if self.estimate in (0, 1) else 0)
            self._halted = True
            return
        self.round = next_round
        # Slots of earlier rounds are intentionally kept in the transport so
        # that NACK repair can still serve laggards that are stuck in an older
        # round; dirty-only packet building keeps them off the air otherwise.
        self._broadcast_bval(next_round, self.estimate)
        # Messages for the new round may have arrived early; re-evaluate them.
        new_state = self._state(next_round)
        self._maybe_send_aux(next_round, new_state)
        self._maybe_reveal_coin(next_round, new_state)

    # ----------------------------------------------------------------- decide
    def _decide(self, value: int) -> None:
        if self.decided_value is None:
            self.decided_value = value
        if not self._decided_sent:
            self._decided_sent = True
            self._decided_notices.setdefault(value, set()).add(self.ctx.node_id)
            self.send("decided", {"value": value}, payload_bytes=1)
        self.complete(value)
        self._maybe_halt()

    def _on_decided(self, message: ComponentMessage) -> None:
        value = message.payload.get("value")
        if value not in (0, 1):
            return
        self._decided_notices.setdefault(value, set()).add(message.sender)
        if (len(self._decided_notices[value]) >= self.ctx.small_quorum
                and not self.completed):
            self.estimate = value
            self._decide(value)
        self._maybe_halt()

    def _maybe_halt(self) -> None:
        if self.decided_value is None:
            return
        notices = len(self._decided_notices.get(self.decided_value, set()))
        if notices >= self.ctx.quorum:
            self._halted = True
