"""Component runtime: context, base class and message router.

A consensus component instance (one RBC, one ABA, ...) is an event-driven
state machine identified by ``(kind, tag, instance)``:

* ``kind``     -- the component family (``rbc``, ``cbc``, ``aba_sc``, ...);
* ``tag``      -- the protocol scope it belongs to (an epoch id, or Dumbo's
  ``value`` / ``commit`` CBC set), so that several protocols or epochs can
  coexist on one node;
* ``instance`` -- the index of the parallel instance (usually the proposer's
  node id, or the ABA slot).

Messages flow through a transport (batched or baseline); the
:class:`ComponentRouter` is registered as the transport's receiver and
dispatches each :class:`~repro.core.packet.ComponentMessage` to the matching
instance, buffering messages that arrive before their instance exists --
a routine occurrence in asynchronous protocols.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.batcher import BaseTransport
from repro.core.packet import ComponentMessage, tag_in_scope, tag_scope_chain
from repro.crypto.timing import CryptoSuite
from repro.net.sim import Simulator

OutputCallback = Callable[[int, Any], None]


def sha256_hex(data: bytes) -> str:
    """Short helper: hex SHA-256 of ``data`` (proposal identification)."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class ComponentContext:
    """Everything a component needs from its hosting node."""

    node_id: int
    num_nodes: int
    faults: int
    transport: BaseTransport
    suite: CryptoSuite
    sim: Simulator
    rng: Any

    @property
    def quorum(self) -> int:
        """The 2f + 1 quorum."""
        return 2 * self.faults + 1

    @property
    def small_quorum(self) -> int:
        """The f + 1 quorum."""
        return self.faults + 1

    def byzantine_quorum_reached(self, count: int) -> bool:
        """True when ``count`` distinct contributions reach 2f + 1."""
        return count >= self.quorum


class Component:
    """Base class for consensus component instances."""

    kind = "abstract"

    def __init__(self, ctx: ComponentContext, instance: int, tag: Any = None,
                 on_output: Optional[OutputCallback] = None) -> None:
        self.ctx = ctx
        self.instance = instance
        self.tag = tag
        self.on_output = on_output
        self.completed = False
        self.output: Any = None
        ctx.transport.activate(self.kind, tag, instance)

    # ------------------------------------------------------------------ sends
    def send(self, phase: str, payload: Any, payload_bytes: int = 0,
             share_bytes: int = 0, round_number: int = 0,
             slot: Any = None) -> None:
        """Broadcast a logical message for this instance."""
        message = ComponentMessage(
            kind=self.kind, instance=self.instance, phase=phase,
            sender=self.ctx.node_id, payload=payload,
            payload_bytes=payload_bytes, share_bytes=share_bytes,
            round=round_number, tag=self.tag, slot=slot)
        self.ctx.transport.send(message)

    # ---------------------------------------------------------------- receive
    def handle(self, message: ComponentMessage) -> None:  # pragma: no cover - abstract
        """Process one logical message addressed to this instance."""
        raise NotImplementedError

    # --------------------------------------------------------------- complete
    def complete(self, output: Any) -> None:
        """Record the instance's output and notify the owner (idempotent)."""
        if self.completed:
            return
        self.completed = True
        self.output = output
        # Stop NACK-requesting for this instance; peers may still ask us for
        # its state and we will keep answering from the transport slots.
        self.ctx.transport.mark_complete(self.kind, self.tag, self.instance)
        if self.on_output is not None:
            self.on_output(self.instance, output)

    # ------------------------------------------------------------------ misc
    def describe(self) -> str:
        """Readable identifier for logging."""
        tag = f"/{self.tag}" if self.tag is not None else ""
        return f"{self.kind}{tag}[{self.instance}]@node{self.ctx.node_id}"


class ComponentRouter:
    """Routes delivered messages to component instances, buffering early ones."""

    def __init__(self) -> None:
        self._components: dict[tuple, Component] = {}
        self._pending: dict[tuple, list[ComponentMessage]] = defaultdict(list)
        self._extra_handlers: dict[tuple, Callable[[ComponentMessage], None]] = {}
        #: scope roots reclaimed by release_tag; late messages for them are
        #: dropped instead of buffered (one tiny tuple per released epoch)
        self._released: set = set()

    @staticmethod
    def _key(kind: str, tag: Any, instance: int) -> tuple:
        return (kind, tag, instance)

    # --------------------------------------------------------------- register
    def register(self, component: Component) -> None:
        """Register a component instance and replay any buffered messages."""
        key = self._key(component.kind, component.tag, component.instance)
        self._components[key] = component
        pending = self._pending.pop(key, [])
        for message in pending:
            component.handle(message)

    def register_kind_handler(self, kind: str, tag: Any,
                              handler: Callable[[ComponentMessage], None]) -> None:
        """Register a handler for a (kind, tag) pair (e.g. the common-coin
        manager, which serves every instance of its protocol scope)."""
        self._extra_handlers[(kind, tag)] = handler

    def get(self, kind: str, tag: Any, instance: int) -> Optional[Component]:
        """Look up a registered component instance."""
        return self._components.get(self._key(kind, tag, instance))

    def components(self) -> list[Component]:
        """All registered component instances."""
        return list(self._components.values())

    # --------------------------------------------------------------- dispatch
    def dispatch(self, message: ComponentMessage) -> None:
        """Deliver a message to its component (or buffer it until it exists)."""
        handler = self._extra_handlers.get((message.kind, message.tag))
        if handler is not None:
            handler(message)
            return
        key = self._key(message.kind, message.tag, message.instance)
        component = self._components.get(key)
        if component is None:
            # A message for a released (checkpointed) scope is stale by
            # definition -- drop it instead of buffering it forever.
            if self._released and any(root in self._released
                                      for root in tag_scope_chain(message.tag)):
                return
            self._pending[key].append(message)
            return
        component.handle(message)

    def pending_count(self) -> int:
        """Number of buffered messages waiting for their instance."""
        return sum(len(messages) for messages in self._pending.values())

    # ------------------------------------------------------------ epoch GC
    def release_tag(self, root: Any) -> int:
        """Drop every component, kind handler and buffered message whose tag
        falls in the scope of ``root`` (see
        :func:`repro.core.packet.tag_in_scope`).

        Called by the streaming testbed after an epoch checkpoint: once every
        honest node has decided epoch ``e``, nothing will ever dispatch to
        its components again, so holding them would grow node memory
        O(history) instead of O(backlog).  The root is remembered so that
        messages still in flight at checkpoint time are *dropped* on arrival
        rather than re-buffered into ``_pending`` (the remembered roots cost
        one small tuple per released epoch).  Returns the number of dropped
        components (for GC-bound assertions in tests).
        """
        self._released.add(root)
        stale = [key for key in self._components if tag_in_scope(key[1], root)]
        for key in stale:
            del self._components[key]
        for key in [key for key in self._pending
                    if tag_in_scope(key[1], root)]:
            del self._pending[key]
        for key in [key for key in self._extra_handlers
                    if tag_in_scope(key[1], root)]:
            del self._extra_handlers[key]
        return len(stale)
