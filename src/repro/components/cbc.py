"""Consistent broadcast (CBC) with a threshold-signature certificate.

CBC (Fig. 1b) has three phases: the proposer broadcasts its value (INITIAL);
every node returns a threshold-signature share over the value's hash (ECHO,
an N-to-1 pattern in wired networks); the proposer combines ``2f + 1`` shares
into a certificate and broadcasts it (FINISH).  A node delivers ``(value,
certificate)``; consistency follows because the proposer can obtain a
certificate for at most one value per instance.

Dumbo runs two sets of N parallel CBC instances (CBC_value and CBC_commit,
distinguished here by the ``tag``).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.components.base import Component, ComponentContext, OutputCallback, sha256_hex
from repro.core.packet import ComponentMessage
from repro.crypto.threshold_sig import ThresholdSigError


class Cbc(Component):
    """One CBC instance; ``instance`` doubles as the proposer's node id."""

    kind = "cbc"

    def __init__(self, ctx: ComponentContext, instance: int, tag: Any = None,
                 on_output: Optional[OutputCallback] = None,
                 proposer: Optional[int] = None) -> None:
        super().__init__(ctx, instance, tag, on_output)
        self.proposer = instance if proposer is None else proposer
        self.value: Any = None
        self.value_hash: Optional[str] = None
        self.certificate: Any = None
        self._shares: dict[int, Any] = {}
        self._echo_sent = False
        self._finish_sent = False
        self._pending_finish: Optional[ComponentMessage] = None
        self._pending_echo_shares: list[ComponentMessage] = []

    # ------------------------------------------------------------------ start
    def start(self, value: Any) -> None:
        """Proposer entry point: broadcast the value."""
        if self.ctx.node_id != self.proposer:
            raise ValueError(
                f"node {self.ctx.node_id} is not the proposer of {self.describe()}")
        encoded = self._encode(value)
        self.send("initial", {"value": value}, payload_bytes=len(encoded))

    @staticmethod
    def _encode(value: Any) -> bytes:
        if isinstance(value, bytes):
            return value
        return repr(value).encode()

    def _cert_message(self) -> bytes:
        return f"cbc|{self.tag}|{self.instance}|{self.value_hash}".encode()

    # ----------------------------------------------------------------- handle
    def handle(self, message: ComponentMessage) -> None:
        """Process INITIAL / ECHO (signature share) / FINISH messages."""
        if message.phase == "initial":
            self._on_initial(message)
        elif message.phase == "echo_sig":
            self._on_echo_share(message)
        elif message.phase == "finish":
            self._on_finish(message)

    def _on_initial(self, message: ComponentMessage) -> None:
        if message.sender != self.proposer or self.value is not None:
            return
        value = message.payload.get("value")
        if value is None:
            return
        self.value = value
        self.value_hash = sha256_hex(self._encode(value))
        if not self._echo_sent:
            self._echo_sent = True
            share = self.ctx.suite.tsig_share(self._cert_message())
            if self.ctx.node_id == self.proposer:
                self._shares[self.ctx.node_id] = share
            self.send("echo_sig", {"hash": self.value_hash, "share": share},
                      share_bytes=self.ctx.suite.threshold_share_bytes)
        if self._pending_finish is not None:
            pending, self._pending_finish = self._pending_finish, None
            self._on_finish(pending)
        if self._pending_echo_shares:
            pending_shares, self._pending_echo_shares = self._pending_echo_shares, []
            for pending_share in pending_shares:
                self._on_echo_share(pending_share)
        self._maybe_finish()

    def _on_echo_share(self, message: ComponentMessage) -> None:
        # Only the proposer combines echo shares into the certificate.
        if self.ctx.node_id != self.proposer:
            return
        if message.sender in self._shares:
            return
        if self.value is None:
            # Asynchrony: a peer's echo share can overtake our own INITIAL
            # processing; keep it until the value (and its hash) is known.
            self._pending_echo_shares.append(message)
            return
        share = message.payload.get("share")
        value_hash = message.payload.get("hash")
        if share is None or value_hash is None or value_hash != self.value_hash:
            return
        if message.sender != self.ctx.node_id:
            if not self.ctx.suite.tsig_verify_share(self._cert_message(), share):
                return
        self._shares[message.sender] = share
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (self.ctx.node_id != self.proposer or self._finish_sent
                or self.value is None or len(self._shares) < self.ctx.quorum):
            return
        try:
            # Every stored echo share was verified on receipt.
            certificate = self.ctx.suite.tsig_combine(self._cert_message(),
                                                      list(self._shares.values()),
                                                      verify=False)
        except ThresholdSigError:
            return
        self._finish_sent = True
        self.certificate = certificate
        self.send("finish", {"hash": self.value_hash, "certificate": certificate},
                  share_bytes=self.ctx.suite.threshold_signature_bytes)
        self.complete((self.value, certificate))

    def _on_finish(self, message: ComponentMessage) -> None:
        if self.completed:
            return
        if self.value is None:
            # FINISH arrived before INITIAL; keep it until the value shows up.
            self._pending_finish = message
            return
        certificate = message.payload.get("certificate")
        value_hash = message.payload.get("hash")
        if certificate is None or value_hash != self.value_hash:
            return
        if not self.ctx.suite.tsig_verify(self._cert_message(), certificate):
            return
        self.certificate = certificate
        self.complete((self.value, certificate))
