"""RBC-small: reliable broadcast optimised for tiny proposals (Fig. 5a).

When the broadcast value fits in a couple of bits (the votes inside Bracha's
ABA, or similar), carrying a 32-byte hash per instance wastes bandwidth.  The
RBC-small packet format encodes the proposal itself (2 bits: 0, 1 or bot) in
the INITIAL field and lets ECHO/READY votes refer to the value directly.  The
protocol logic is identical to Bracha's RBC; only the packet accounting (the
``rbc_small`` kind selects the Fig. 5a layout in the packet sizer) and the
value matching differ.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.components.base import Component, ComponentContext, OutputCallback
from repro.core.packet import ComponentMessage

#: the "bottom" proposal (no value)
BOT = None


class RbcSmall(Component):
    """One RBC-small instance broadcasting a value from a tiny domain."""

    kind = "rbc_small"

    def __init__(self, ctx: ComponentContext, instance: int, tag: Any = None,
                 on_output: Optional[OutputCallback] = None,
                 proposer: Optional[int] = None) -> None:
        super().__init__(ctx, instance, tag, on_output)
        self.proposer = instance if proposer is None else proposer
        self.value: Any = BOT
        self._have_value = False
        self._echoes: dict[Any, set[int]] = {}
        self._readies: dict[Any, set[int]] = {}
        self._echo_sent = False
        self._ready_sent = False
        self._deliverable: Any = None
        self._deliverable_ready = False

    # ------------------------------------------------------------------ start
    def start(self, value: Any) -> None:
        """Proposer entry point: broadcast the small value (e.g. 0, 1 or None)."""
        if self.ctx.node_id != self.proposer:
            raise ValueError(
                f"node {self.ctx.node_id} is not the proposer of {self.describe()}")
        self.send("initial", {"value": value}, payload_bytes=1)

    # ----------------------------------------------------------------- handle
    def handle(self, message: ComponentMessage) -> None:
        """Process an INITIAL / ECHO / READY message."""
        if message.phase == "initial":
            self._on_initial(message)
        elif message.phase == "echo":
            self._on_vote(self._echoes, message)
        elif message.phase == "ready":
            self._on_vote(self._readies, message)

    def _on_initial(self, message: ComponentMessage) -> None:
        if message.sender != self.proposer or self._have_value:
            self._try_deliver()
            return
        self.value = message.payload.get("value")
        self._have_value = True
        if not self._echo_sent:
            self._echo_sent = True
            self.send("echo", {"value": self.value})
        self._check_quorums()

    def _on_vote(self, votes: dict[Any, set[int]],
                 message: ComponentMessage) -> None:
        value = message.payload.get("value")
        votes.setdefault(value, set()).add(message.sender)
        self._check_quorums()

    # ----------------------------------------------------------- state rules
    def _check_quorums(self) -> None:
        for value, echoers in self._echoes.items():
            if len(echoers) >= self.ctx.quorum and not self._ready_sent:
                self._send_ready(value)
        for value, readiers in self._readies.items():
            if len(readiers) >= self.ctx.small_quorum and not self._ready_sent:
                self._send_ready(value)
            if len(readiers) >= self.ctx.quorum:
                self._deliverable = value
                self._deliverable_ready = True
        self._try_deliver()

    def _send_ready(self, value: Any) -> None:
        self._ready_sent = True
        self.send("ready", {"value": value})

    def _try_deliver(self) -> None:
        if self.completed or not self._deliverable_ready:
            return
        # Small values are self-contained: delivery does not need the INITIAL.
        self.complete(self._deliverable)
