"""The shared common coin used by ABA-SC and ABA-CP.

Each round of a shared-coin ABA needs one bit of common randomness that the
adversary cannot predict before ``f + 1`` honest nodes have released their
shares.  The coin manager:

* broadcasts this node's coin share for a round when the round first asks for
  the coin (never earlier -- Section V-A stresses that premature share release
  for later serial ABAs must be prevented);
* collects and verifies other nodes' shares;
* combines ``f + 1`` valid shares into the coin value and hands it to every
  subscriber.

Within one protocol instance (one ``tag``), all parallel ABA instances of the
same round share the same coin, which is safe on a broadcast wireless channel
(the paper's Technical Challenge III) and is exactly how the packet format of
Fig. 6b carries a single Share field for k batched instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.components.base import ComponentContext
from repro.core.packet import ComponentMessage

CoinCallback = Callable[[int, int], None]  # (round, coin_value)


@dataclass
class _RoundState:
    requested: bool = False
    share_sent: bool = False
    shares: dict[int, Any] = field(default_factory=dict)
    value: Optional[int] = None
    callbacks: list[CoinCallback] = field(default_factory=list)


class CommonCoinManager:
    """Per-node manager of the round coins for one protocol instance."""

    kind = "coin"

    def __init__(self, ctx: ComponentContext, tag: Any, flavor: str = "tsig",
                 coin_name: str = "aba") -> None:
        if flavor not in ("tsig", "flip"):
            raise ValueError(f"unknown coin flavor {flavor!r}")
        self.ctx = ctx
        self.tag = tag
        self.flavor = flavor
        self.coin_name = coin_name
        self._rounds: dict[int, _RoundState] = {}
        ctx.transport.activate(self.kind, tag, 0)
        # The manager only counts as "unfinished" while a requested coin is
        # still unrevealed (drives NACK repair for missing coin shares).
        ctx.transport.mark_complete(self.kind, tag, 0)

    # ---------------------------------------------------------------- request
    def request(self, round_number: int, callback: CoinCallback) -> None:
        """Ask for the coin of ``round_number``; ``callback`` fires when known."""
        state = self._rounds.setdefault(round_number, _RoundState())
        if state.value is not None:
            callback(round_number, state.value)
            return
        state.callbacks.append(callback)
        state.requested = True
        self.ctx.transport.mark_incomplete(self.kind, self.tag, 0)
        self._maybe_send_share(round_number, state)
        self._maybe_combine(round_number, state)

    def _coin_tag(self, round_number: int) -> bytes:
        return f"coin|{self.coin_name}|{self.tag}|{round_number}".encode()

    def _maybe_send_share(self, round_number: int, state: _RoundState) -> None:
        if state.share_sent or not state.requested:
            return
        state.share_sent = True
        share = self.ctx.suite.coin_share(self._coin_tag(round_number),
                                          flavor=self.flavor)
        state.shares[self.ctx.node_id] = share
        message = ComponentMessage(
            kind=self.kind, instance=0, phase="share", sender=self.ctx.node_id,
            payload={"share": share}, share_bytes=self.ctx.suite.threshold_share_bytes,
            round=round_number, tag=self.tag)
        self.ctx.transport.send(message)

    # ---------------------------------------------------------------- receive
    def handle(self, message: ComponentMessage) -> None:
        """Process a coin-share message (registered as a kind handler)."""
        if message.tag != self.tag or message.phase != "share":
            return
        round_number = message.round
        state = self._rounds.setdefault(round_number, _RoundState())
        if message.sender in state.shares or state.value is not None:
            self._maybe_combine(round_number, state)
            return
        share = message.payload.get("share")
        if share is None:
            return
        if message.sender != self.ctx.node_id:
            if not self.ctx.suite.coin_verify_share(self._coin_tag(round_number),
                                                    share, flavor=self.flavor):
                return
        state.shares[message.sender] = share
        self._maybe_combine(round_number, state)

    # ---------------------------------------------------------------- combine
    def _maybe_combine(self, round_number: int, state: _RoundState) -> None:
        if state.value is not None or not state.requested:
            return
        if len(state.shares) < self.ctx.small_quorum:
            return
        # Every stored share already passed per-share verification in
        # :meth:`handle` (own shares are honestly produced), so the combine
        # can skip its redundant batch re-verification; the modelled combine
        # cost is charged either way and the combined element is identical.
        value = self.ctx.suite.coin_combine(self._coin_tag(round_number),
                                            list(state.shares.values()),
                                            flavor=self.flavor, verify=False)
        state.value = value
        if all(s.value is not None or not s.requested for s in self._rounds.values()):
            self.ctx.transport.mark_complete(self.kind, self.tag, 0)
        callbacks, state.callbacks = state.callbacks, []
        for callback in callbacks:
            callback(round_number, value)

    # ------------------------------------------------------------------ value
    def known_value(self, round_number: int) -> Optional[int]:
        """The coin value if already revealed, else None."""
        state = self._rounds.get(round_number)
        return state.value if state else None
