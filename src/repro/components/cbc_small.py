"""CBC-small: consistent broadcast for tiny proposals (Fig. 5b).

Dumbo's CBC_commit instances broadcast node-id lists of length ``2f + 1``,
which fit in N bits, so the INITIAL phase can be batched together with the
ECHO and FINISH phases instead of being carried as a full proposal.  The
protocol logic is identical to :class:`~repro.components.cbc.Cbc`; the
``cbc_small`` kind selects the compact packet layout in the packet sizer.
"""

from __future__ import annotations

from repro.components.cbc import Cbc


class CbcSmall(Cbc):
    """A CBC instance whose value is small (e.g. a 2f+1 node-id list)."""

    kind = "cbc_small"
