"""Bracha's reliable broadcast (RBC).

The broadcast protocol used throughout the paper (Section III-B.1): the
proposer broadcasts its proposal in the INITIAL phase; every node that
receives it broadcasts an ECHO vote identifying the proposal by its hash; on
``2f + 1`` echoes a node broadcasts READY (or on ``f + 1`` readies, the
amplification rule); on ``2f + 1`` readies a node delivers the proposal.

Guarantees (with ``N = 3f + 1`` and at most ``f`` Byzantine nodes):

* *validity* -- if the proposer is honest, every honest node delivers its
  proposal;
* *agreement* -- no two honest nodes deliver different proposals for the same
  instance;
* *totality* -- if one honest node delivers, every honest node eventually
  delivers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.components.base import Component, ComponentContext, OutputCallback, sha256_hex
from repro.core.packet import ComponentMessage


class BrachaRbc(Component):
    """One RBC instance; ``instance`` doubles as the proposer's node id."""

    kind = "rbc"

    def __init__(self, ctx: ComponentContext, instance: int, tag: Any = None,
                 on_output: Optional[OutputCallback] = None,
                 proposer: Optional[int] = None) -> None:
        super().__init__(ctx, instance, tag, on_output)
        self.proposer = instance if proposer is None else proposer
        self.value: Optional[bytes] = None
        self.value_hash: Optional[str] = None
        self._echoes: dict[str, set[int]] = {}
        self._readies: dict[str, set[int]] = {}
        self._echo_sent = False
        self._ready_sent = False
        self._pending_deliver_hash: Optional[str] = None

    # ------------------------------------------------------------------ start
    def start(self, value: bytes) -> None:
        """Proposer entry point: broadcast the proposal."""
        if self.ctx.node_id != self.proposer:
            raise ValueError(
                f"node {self.ctx.node_id} is not the proposer of {self.describe()}")
        self.send("initial", {"value": value}, payload_bytes=len(value))

    # ----------------------------------------------------------------- handle
    def handle(self, message: ComponentMessage) -> None:
        """Process an INITIAL / ECHO / READY message."""
        if message.phase == "initial":
            self._on_initial(message)
        elif message.phase == "echo":
            self._on_echo(message)
        elif message.phase == "ready":
            self._on_ready(message)

    # ---------------------------------------------------------------- phases
    def _on_initial(self, message: ComponentMessage) -> None:
        if message.sender != self.proposer:
            return  # only the proposer may open the instance
        value = message.payload.get("value")
        if value is None or self.value is not None:
            self._try_deliver()
            return
        self.value = value
        self.value_hash = sha256_hex(value)
        if not self._echo_sent:
            self._echo_sent = True
            self.send("echo", {"hash": self.value_hash})
        self._check_quorums()
        self._try_deliver()

    def _on_echo(self, message: ComponentMessage) -> None:
        value_hash = message.payload.get("hash")
        if value_hash is None:
            return
        self._echoes.setdefault(value_hash, set()).add(message.sender)
        self._check_quorums()

    def _on_ready(self, message: ComponentMessage) -> None:
        value_hash = message.payload.get("hash")
        if value_hash is None:
            return
        self._readies.setdefault(value_hash, set()).add(message.sender)
        self._check_quorums()

    # ----------------------------------------------------------- state rules
    def _check_quorums(self) -> None:
        for value_hash, echoers in self._echoes.items():
            if len(echoers) >= self.ctx.quorum and not self._ready_sent:
                self._send_ready(value_hash)
        for value_hash, readiers in self._readies.items():
            if len(readiers) >= self.ctx.small_quorum and not self._ready_sent:
                self._send_ready(value_hash)
            if len(readiers) >= self.ctx.quorum:
                self._pending_deliver_hash = value_hash
        self._try_deliver()

    def _send_ready(self, value_hash: str) -> None:
        self._ready_sent = True
        self.send("ready", {"hash": value_hash})

    def _try_deliver(self) -> None:
        if self.completed or self._pending_deliver_hash is None:
            return
        if self.value is not None and self.value_hash == self._pending_deliver_hash:
            self.complete(self.value)
