"""Erasure coding for Cachin's (AVID-style) reliable broadcast.

Cachin's RBC divides the proposal into N blocks using an (k, N) erasure code
so that any k blocks reconstruct the proposal.  The paper points out that
this under-utilises a wireless broadcast channel (N - 1 unicast-style
transmissions instead of one broadcast) and therefore prefers Bracha's RBC;
the coder is still provided so the comparison can be made.

The code is a systematic-free Reed-Solomon code over the prime field
``F_p`` with ``p = 2^31 - 1``: the payload is chunked into field elements,
interpreted as the coefficients of polynomials, and block ``i`` holds the
evaluations at point ``i + 1``.  Any ``k`` blocks interpolate the polynomials
and recover the payload.
"""

from __future__ import annotations

from dataclasses import dataclass

_PRIME = 2**31 - 1
_CHUNK_BYTES = 3  # 24-bit chunks always fit below 2^31 - 1


class ErasureError(ValueError):
    """Raised for invalid coding parameters or undecodable share sets."""


@dataclass(frozen=True)
class ErasureBlock:
    """One coded block: evaluations of the payload polynomials at one point."""

    index: int
    point: int
    values: tuple[int, ...]
    payload_length: int
    num_data_blocks: int

    def size_bytes(self) -> int:
        """Approximate wire size of the block."""
        return len(self.values) * _CHUNK_BYTES + 8


def _chunk(data: bytes) -> list[int]:
    padded = data + b"\x00" * ((-len(data)) % _CHUNK_BYTES)
    return [int.from_bytes(padded[i:i + _CHUNK_BYTES], "big")
            for i in range(0, len(padded), _CHUNK_BYTES)]


def _unchunk(values: list[int], length: int) -> bytes:
    raw = b"".join(value.to_bytes(_CHUNK_BYTES, "big") for value in values)
    return raw[:length]


def encode_blocks(data: bytes, num_data_blocks: int,
                  num_blocks: int) -> list[ErasureBlock]:
    """Encode ``data`` into ``num_blocks`` blocks, any ``num_data_blocks`` of
    which suffice to decode."""
    if num_data_blocks < 1:
        raise ErasureError(f"need at least 1 data block, got {num_data_blocks}")
    if num_blocks < num_data_blocks:
        raise ErasureError(
            f"total blocks ({num_blocks}) must be >= data blocks ({num_data_blocks})")
    chunks = _chunk(data)
    if not chunks:
        chunks = [0]
    # Group chunks into polynomials of degree < num_data_blocks.
    polynomials: list[list[int]] = []
    for start in range(0, len(chunks), num_data_blocks):
        coefficients = chunks[start:start + num_data_blocks]
        coefficients += [0] * (num_data_blocks - len(coefficients))
        polynomials.append(coefficients)
    blocks = []
    for index in range(num_blocks):
        point = index + 1
        values = []
        for coefficients in polynomials:
            acc = 0
            for coefficient in reversed(coefficients):
                acc = (acc * point + coefficient) % _PRIME
            values.append(acc)
        blocks.append(ErasureBlock(index=index, point=point, values=tuple(values),
                                   payload_length=len(data),
                                   num_data_blocks=num_data_blocks))
    return blocks


def decode_blocks(blocks: list[ErasureBlock]) -> bytes:
    """Recover the payload from at least ``num_data_blocks`` distinct blocks."""
    if not blocks:
        raise ErasureError("no blocks to decode")
    num_data_blocks = blocks[0].num_data_blocks
    payload_length = blocks[0].payload_length
    distinct: dict[int, ErasureBlock] = {}
    for block in blocks:
        if block.num_data_blocks != num_data_blocks:
            raise ErasureError("blocks come from different encodings")
        distinct.setdefault(block.point, block)
    if len(distinct) < num_data_blocks:
        raise ErasureError(
            f"need {num_data_blocks} distinct blocks, got {len(distinct)}")
    selected = sorted(distinct.values(), key=lambda b: b.point)[:num_data_blocks]
    points = [block.point for block in selected]
    num_polynomials = len(selected[0].values)
    # Lagrange interpolation of each polynomial's coefficients via evaluation
    # at the required points; we recover coefficients by solving with the
    # classic Lagrange basis evaluated at x = 0..k-1 is unnecessary -- we just
    # need the coefficients, so interpolate the polynomial explicitly.
    chunks: list[int] = []
    for poly_index in range(num_polynomials):
        values = [block.values[poly_index] for block in selected]
        coefficients = _interpolate_coefficients(points, values)
        chunks.extend(coefficients)
    return _unchunk(chunks, payload_length)


def _interpolate_coefficients(points: list[int], values: list[int]) -> list[int]:
    """Recover polynomial coefficients (low-to-high) from point evaluations."""
    k = len(points)
    # Build the polynomial as a coefficient vector via Lagrange basis expansion.
    coefficients = [0] * k
    for i in range(k):
        # numerator polynomial prod_{j != i} (x - x_j)
        basis = [1]
        denominator = 1
        for j in range(k):
            if i == j:
                continue
            basis = _poly_mul(basis, [(-points[j]) % _PRIME, 1])
            denominator = (denominator * (points[i] - points[j])) % _PRIME
        scale = (values[i] * pow(denominator, -1, _PRIME)) % _PRIME
        for degree, coefficient in enumerate(basis):
            coefficients[degree] = (coefficients[degree] + coefficient * scale) % _PRIME
    return coefficients


def _poly_mul(a: list[int], b: list[int]) -> list[int]:
    result = [0] * (len(a) + len(b) - 1)
    for i, coefficient_a in enumerate(a):
        for j, coefficient_b in enumerate(b):
            result[i + j] = (result[i + j] + coefficient_a * coefficient_b) % _PRIME
    return result
