"""Erasure coding for Cachin's (AVID-style) reliable broadcast.

Cachin's RBC divides the proposal into N blocks using an (k, N) erasure code
so that any k blocks reconstruct the proposal.  The paper points out that
this under-utilises a wireless broadcast channel (N - 1 unicast-style
transmissions instead of one broadcast) and therefore prefers Bracha's RBC;
the coder is still provided so the comparison can be made.

The code is a Reed-Solomon code over the prime field ``F_p`` with
``p = 2^31 - 1``: the payload is chunked into field elements, interpreted as
the coefficients of polynomials, and block ``i`` holds the evaluations at
point ``i + 1``.  Any ``k`` blocks interpolate the polynomials and recover
the payload.

Decoding no longer expands Lagrange basis polynomials per payload polynomial
(O(k^3) each): it builds the inverse-Vandermonde action once per distinct
point set -- the matrix whose rows are the Lagrange basis coefficient
vectors, computed in O(k^2) via synthetic division of the master polynomial
-- caches it, and recovers each polynomial with an O(k^2) matrix-vector
product.  The results are bit-identical to the naive interpolation (same
field, same canonical representatives).

``encode_blocks(..., systematic=True)`` additionally offers a *systematic*
mode where the payload chunks are interpreted as the evaluations at points
``1..k`` themselves: the first ``k`` blocks carry raw payload chunks (no
polynomial evaluation at all) and decoding from exactly those blocks is a
pass-through.  The default mode is unchanged and produces byte-identical
blocks to the seed implementation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache
from operator import attrgetter

from repro.crypto import backend as crypto_backend
from repro.crypto.backend.matrix import MAX_INNER_DIM

_PRIME = 2**31 - 1
_CHUNK_BYTES = 3  # 24-bit chunks always fit below 2^31 - 1


class ErasureError(ValueError):
    """Raised for invalid coding parameters or undecodable share sets."""


@dataclass(frozen=True)
class ErasureBlock:
    """One coded block: evaluations of the payload polynomials at one point."""

    index: int
    point: int
    values: tuple[int, ...]
    payload_length: int
    num_data_blocks: int
    systematic: bool = False

    def size_bytes(self) -> int:
        """Approximate wire size of the block."""
        return len(self.values) * _CHUNK_BYTES + 8


def _chunk(data: bytes) -> list[int]:
    padded = data + b"\x00" * ((-len(data)) % _CHUNK_BYTES)
    return [int.from_bytes(padded[i:i + _CHUNK_BYTES], "big")
            for i in range(0, len(padded), _CHUNK_BYTES)]


def _unchunk(values: list[int], length: int) -> bytes:
    raw = b"".join(value.to_bytes(_CHUNK_BYTES, "big") for value in values)
    return raw[:length]


@lru_cache(maxsize=512)
def _lagrange_basis_columns(points: tuple[int, ...]) -> tuple[tuple[int, ...], ...]:
    """Columns of the interpolation matrix for ``points``.

    Row ``i`` of the matrix holds the coefficients (low-to-high) of the
    Lagrange basis polynomial ``L_i`` with ``L_i(points[j]) = delta_ij``;
    multiplying evaluations by the matrix recovers polynomial coefficients.
    Returned transposed (as columns, one per coefficient degree) so decoding
    can take dot products against the evaluation vector directly.

    Built in O(k^2): one master-polynomial product, then one synthetic
    division and one Horner evaluation per point.
    """
    k = len(points)
    # Master polynomial M(x) = prod (x - x_j), coefficients low-to-high.
    master = [1]
    for x in points:
        shifted = [0] * (len(master) + 1)
        for degree, coefficient in enumerate(master):
            shifted[degree] = (shifted[degree] - x * coefficient) % _PRIME
            shifted[degree + 1] = (shifted[degree + 1] + coefficient) % _PRIME
        master = shifted
    rows = []
    for x_i in points:
        # Synthetic division: Q_i = M / (x - x_i), degree k - 1.
        quotient = [0] * k
        carry = 0
        for degree in range(k, 0, -1):
            carry = (master[degree] + carry * x_i) % _PRIME
            quotient[degree - 1] = carry
        # Q_i(x_i) = prod_{j != i} (x_i - x_j), the basis denominator.
        acc = 0
        for coefficient in reversed(quotient):
            acc = (acc * x_i + coefficient) % _PRIME
        inverse = pow(acc, -1, _PRIME)
        rows.append([coefficient * inverse % _PRIME for coefficient in quotient])
    return tuple(tuple(row[degree] for row in rows) for degree in range(k))


def _interpolate_via_matrix(points: tuple[int, ...],
                            values: list[int]) -> list[int]:
    """Coefficients (low-to-high) of the interpolant through the points."""
    columns = _lagrange_basis_columns(points)
    return [sum(value * weight for value, weight in zip(values, column)) % _PRIME
            for column in columns]


def _matrix_engine(inner_dim: int):
    """The active native matrix engine when it can handle ``inner_dim``.

    ``None`` under the pure backend (the default), when numpy is absent, or
    when the inner dimension would overflow the int64 limb accumulation --
    callers fall back to the pure scalar path in every such case.
    """
    if inner_dim > MAX_INNER_DIM:
        return None
    return crypto_backend.matrix_engine()


@lru_cache(maxsize=128)
def _vandermonde_rows(points: tuple[int, ...],
                      width: int) -> tuple[tuple[int, ...], ...]:
    """Evaluation-matrix rows ``point^degree`` for degrees ``0..width-1``."""
    return tuple(tuple(pow(point, degree, _PRIME) for degree in range(width))
                 for point in points)


def _matmul_rows(engine, rows, vectors: list[list[int]]) -> list[list[int]]:
    """``rows @ vectors`` over ``F_p`` as lists of Python ints."""
    product = engine.matmul_mod(engine.matrix(rows), engine.matrix(vectors),
                                _PRIME)
    return product.tolist()


def encode_blocks(data: bytes, num_data_blocks: int, num_blocks: int,
                  systematic: bool = False) -> list[ErasureBlock]:
    """Encode ``data`` into ``num_blocks`` blocks, any ``num_data_blocks`` of
    which suffice to decode.

    With ``systematic=True`` the payload chunks are used directly as the
    evaluations at points ``1..k``, so the first ``k`` blocks are raw payload
    slices and only the ``n - k`` parity blocks cost polynomial evaluations.
    The default (non-systematic) encoding is byte-identical to the seed
    implementation.
    """
    if num_data_blocks < 1:
        raise ErasureError(f"need at least 1 data block, got {num_data_blocks}")
    if num_blocks < num_data_blocks:
        raise ErasureError(
            f"total blocks ({num_blocks}) must be >= data blocks ({num_data_blocks})")
    chunks = _chunk(data)
    if not chunks:
        chunks = [0]
    # Group chunks into polynomials of degree < num_data_blocks.
    groups: list[list[int]] = []
    for start in range(0, len(chunks), num_data_blocks):
        group = chunks[start:start + num_data_blocks]
        group += [0] * (num_data_blocks - len(group))
        groups.append(group)
    if systematic:
        return _encode_systematic(data, groups, num_data_blocks, num_blocks)
    engine = _matrix_engine(num_data_blocks)
    if engine is not None:
        vandermonde = _vandermonde_rows(tuple(range(1, num_blocks + 1)),
                                        num_data_blocks)
        transposed = [[group[degree] for group in groups]
                      for degree in range(num_data_blocks)]
        evaluations = _matmul_rows(engine, vandermonde, transposed)
        return [ErasureBlock(index=index, point=index + 1, values=tuple(row),
                             payload_length=len(data),
                             num_data_blocks=num_data_blocks)
                for index, row in enumerate(evaluations)]
    prime = _PRIME
    blocks = []
    for index in range(num_blocks):
        point = index + 1
        values = []
        for coefficients in groups:
            acc = 0
            for coefficient in reversed(coefficients):
                acc = (acc * point + coefficient) % prime
            values.append(acc)
        blocks.append(ErasureBlock(index=index, point=point, values=tuple(values),
                                   payload_length=len(data),
                                   num_data_blocks=num_data_blocks))
    return blocks


def _encode_systematic(data: bytes, groups: list[list[int]],
                       num_data_blocks: int, num_blocks: int) -> list[ErasureBlock]:
    """Systematic fast path: chunks are the evaluations at points ``1..k``."""
    prime = _PRIME
    data_points = tuple(range(1, num_data_blocks + 1))
    blocks = []
    for index in range(num_data_blocks):
        values = tuple(group[index] for group in groups)
        blocks.append(ErasureBlock(index=index, point=index + 1, values=values,
                                   payload_length=len(data),
                                   num_data_blocks=num_data_blocks,
                                   systematic=True))
    if num_blocks > num_data_blocks:
        engine = _matrix_engine(num_data_blocks)
        if engine is not None:
            basis = _lagrange_basis_columns(data_points)
            transposed = [[group[i] for group in groups]
                          for i in range(num_data_blocks)]
            coefficients = _matmul_rows(engine, basis, transposed)
            parity_points = tuple(range(num_data_blocks + 1, num_blocks + 1))
            evaluations = _matmul_rows(
                engine, _vandermonde_rows(parity_points, num_data_blocks),
                coefficients)
            for offset, row in enumerate(evaluations):
                index = num_data_blocks + offset
                blocks.append(ErasureBlock(index=index, point=index + 1,
                                           values=tuple(row),
                                           payload_length=len(data),
                                           num_data_blocks=num_data_blocks,
                                           systematic=True))
            return blocks
        coefficient_groups = [_interpolate_via_matrix(data_points, group)
                              for group in groups]
        for index in range(num_data_blocks, num_blocks):
            point = index + 1
            values = []
            for coefficients in coefficient_groups:
                acc = 0
                for coefficient in reversed(coefficients):
                    acc = (acc * point + coefficient) % prime
                values.append(acc)
            blocks.append(ErasureBlock(index=index, point=point,
                                       values=tuple(values),
                                       payload_length=len(data),
                                       num_data_blocks=num_data_blocks,
                                       systematic=True))
    return blocks


def decode_blocks(blocks: list[ErasureBlock]) -> bytes:
    """Recover the payload from at least ``num_data_blocks`` distinct blocks.

    Malformed inputs fail with a named :class:`ErasureError` rather than an
    incidental ``IndexError``/``ValueError`` deep in the arithmetic: blocks
    must agree on the encoding parameters, and every block must carry exactly
    the number of values the declared payload length implies (an adversary
    truncating one block's values must not crash -- or silently corrupt --
    the decoder).
    """
    if not blocks:
        raise ErasureError("no blocks to decode")
    reference = blocks[0]
    num_data_blocks = reference.num_data_blocks
    payload_length = reference.payload_length
    systematic = reference.systematic
    if num_data_blocks < 1:
        raise ErasureError(
            f"blocks declare {num_data_blocks} data blocks, need at least 1")
    if payload_length < 0:
        raise ErasureError(
            f"blocks declare a negative payload length ({payload_length})")
    # Every block holds one evaluation per payload polynomial; the polynomial
    # count is fixed by the declared payload length (zero-length payloads
    # still encode one all-zero polynomial).
    chunk_count = max(1, (payload_length + _CHUNK_BYTES - 1) // _CHUNK_BYTES)
    num_polynomials = (chunk_count + num_data_blocks - 1) // num_data_blocks
    distinct: dict[int, ErasureBlock] = {}
    for block in blocks:
        if block.num_data_blocks != num_data_blocks:
            raise ErasureError("blocks come from different encodings")
        if block.payload_length != payload_length:
            raise ErasureError(
                f"inconsistent payload lengths across blocks "
                f"({block.payload_length} != {payload_length})")
        if block.systematic != systematic:
            raise ErasureError("systematic and non-systematic blocks mixed")
        if len(block.values) != num_polynomials:
            raise ErasureError(
                f"block {block.index} carries {len(block.values)} values, "
                f"expected {num_polynomials} for a {payload_length}-byte "
                f"payload")
        distinct.setdefault(block.point, block)
    if len(distinct) < num_data_blocks:
        raise ErasureError(
            f"need {num_data_blocks} distinct blocks, got {len(distinct)}")
    selected = heapq.nsmallest(num_data_blocks, distinct.values(),
                               key=attrgetter("point"))
    points = tuple(block.point for block in selected)
    data_points = tuple(range(1, num_data_blocks + 1))
    if systematic and points == data_points:
        # Pass-through: the selected blocks hold the payload chunks directly.
        chunks = [block.values[poly_index] for poly_index in range(num_polynomials)
                  for block in selected]
        return _unchunk(chunks, payload_length)
    engine = _matrix_engine(num_data_blocks)
    if engine is not None:
        evaluations = [list(block.values) for block in selected]
        result = _matmul_rows(engine, _lagrange_basis_columns(points),
                              evaluations)
        if systematic:
            # The payload chunks are the evaluations at points 1..k.
            result = _matmul_rows(
                engine, _vandermonde_rows(data_points, num_data_blocks),
                result)
        chunks = [result[row][poly_index]
                  for poly_index in range(num_polynomials)
                  for row in range(num_data_blocks)]
        return _unchunk(chunks, payload_length)
    chunks = []
    for poly_index in range(num_polynomials):
        values = [block.values[poly_index] for block in selected]
        coefficients = _interpolate_via_matrix(points, values)
        if systematic:
            # The payload chunks are the evaluations at points 1..k.
            prime = _PRIME
            for point in data_points:
                acc = 0
                for coefficient in reversed(coefficients):
                    acc = (acc * point + coefficient) % prime
                chunks.append(acc)
        else:
            chunks.extend(coefficients)
    return _unchunk(chunks, payload_length)


def _interpolate_coefficients(points: list[int], values: list[int]) -> list[int]:
    """Recover polynomial coefficients (low-to-high) from point evaluations.

    This is the seed implementation (per-basis Lagrange expansion, O(k^3)).
    It is kept as the reference for the bit-identity property tests and the
    hot-path micro-benchmarks; production decoding goes through
    :func:`_interpolate_via_matrix`.
    """
    k = len(points)
    # Build the polynomial as a coefficient vector via Lagrange basis expansion.
    coefficients = [0] * k
    for i in range(k):
        # numerator polynomial prod_{j != i} (x - x_j)
        basis = [1]
        denominator = 1
        for j in range(k):
            if i == j:
                continue
            basis = _poly_mul(basis, [(-points[j]) % _PRIME, 1])
            denominator = (denominator * (points[i] - points[j])) % _PRIME
        scale = (values[i] * pow(denominator, -1, _PRIME)) % _PRIME
        for degree, coefficient in enumerate(basis):
            coefficients[degree] = (coefficients[degree] + coefficient * scale) % _PRIME
    return coefficients


def _poly_mul(a: list[int], b: list[int]) -> list[int]:
    result = [0] * (len(a) + len(b) - 1)
    for i, coefficient_a in enumerate(a):
        for j, coefficient_b in enumerate(b):
            result[i + j] = (result[i + j] + coefficient_a * coefficient_b) % _PRIME
    return result
