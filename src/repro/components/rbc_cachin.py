"""Cachin's erasure-coded reliable broadcast (AVID style).

Cachin-Tessaro RBC divides the proposal into N erasure-coded blocks and sends
a different block to each node; echoes carry the blocks so that every node
can reconstruct the proposal from any ``f + 1`` of them.  In wired networks
this trades bandwidth for balance; in a wireless broadcast medium it costs
``N - 1`` separate transmissions in the INITIAL phase and therefore
under-utilises the channel, which is why the paper standardises on Bracha's
RBC (Section IV-C.1).  The implementation is provided so the comparison can
be reproduced.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from repro.components.base import Component, ComponentContext, OutputCallback
from repro.components.erasure import ErasureBlock, ErasureError, decode_blocks, encode_blocks
from repro.core.packet import ComponentMessage


class CachinRbc(Component):
    """One erasure-coded RBC instance."""

    kind = "rbc"

    def __init__(self, ctx: ComponentContext, instance: int, tag: Any = None,
                 on_output: Optional[OutputCallback] = None,
                 proposer: Optional[int] = None) -> None:
        super().__init__(ctx, instance, tag, on_output)
        self.proposer = instance if proposer is None else proposer
        self.root: Optional[str] = None
        self.my_block: Optional[ErasureBlock] = None
        self._blocks: dict[str, dict[int, ErasureBlock]] = {}
        self._echoers: dict[str, set[int]] = {}
        self._readies: dict[str, set[int]] = {}
        self._echo_sent = False
        self._ready_sent = False
        self._value: Optional[bytes] = None
        self._deliverable_root: Optional[str] = None

    # ------------------------------------------------------------------ start
    def start(self, value: bytes) -> None:
        """Proposer entry point: encode and disperse the proposal."""
        if self.ctx.node_id != self.proposer:
            raise ValueError(
                f"node {self.ctx.node_id} is not the proposer of {self.describe()}")
        blocks = encode_blocks(value, self.ctx.small_quorum, self.ctx.num_nodes)
        root = self._root_of(blocks)
        self._value = value
        self.root = root
        # One INITIAL per recipient: the N-1 transmissions the paper points to.
        for recipient in range(self.ctx.num_nodes):
            block = blocks[recipient]
            if recipient == self.ctx.node_id:
                self.my_block = block
                self._record_block(root, block)
                continue
            self.send("initial", {"root": root, "recipient": recipient,
                                  "block": block},
                      payload_bytes=block.size_bytes(), slot=recipient)
        self._send_echo()

    @staticmethod
    def _root_of(blocks: list[ErasureBlock]) -> str:
        digest = hashlib.sha256()
        for block in blocks:
            digest.update(str(block.values).encode())
        return digest.hexdigest()

    # ----------------------------------------------------------------- handle
    def handle(self, message: ComponentMessage) -> None:
        """Process INITIAL / ECHO / READY messages."""
        if message.phase == "initial":
            self._on_initial(message)
        elif message.phase == "echo":
            self._on_echo(message)
        elif message.phase == "ready":
            self._on_ready(message)

    def _on_initial(self, message: ComponentMessage) -> None:
        if message.sender != self.proposer:
            return
        if message.payload.get("recipient") != self.ctx.node_id:
            return
        if self.my_block is not None:
            return
        self.root = message.payload.get("root")
        self.my_block = message.payload.get("block")
        if self.my_block is not None:
            self._record_block(self.root, self.my_block)
        self._send_echo()

    def _send_echo(self) -> None:
        if self._echo_sent or self.my_block is None or self.root is None:
            return
        self._echo_sent = True
        self.send("echo", {"root": self.root, "block": self.my_block},
                  payload_bytes=self.my_block.size_bytes())

    def _on_echo(self, message: ComponentMessage) -> None:
        root = message.payload.get("root")
        block = message.payload.get("block")
        if root is None or block is None:
            return
        self._echoers.setdefault(root, set()).add(message.sender)
        self._record_block(root, block)
        self._check_quorums()

    def _on_ready(self, message: ComponentMessage) -> None:
        root = message.payload.get("root")
        if root is None:
            return
        self._readies.setdefault(root, set()).add(message.sender)
        self._check_quorums()

    # ----------------------------------------------------------- state rules
    def _record_block(self, root: str, block: ErasureBlock) -> None:
        self._blocks.setdefault(root, {})[block.point] = block

    def _check_quorums(self) -> None:
        for root, echoers in self._echoers.items():
            if len(echoers) >= self.ctx.quorum and not self._ready_sent:
                self._ready_sent = True
                self.send("ready", {"root": root})
        for root, readiers in self._readies.items():
            if len(readiers) >= self.ctx.small_quorum and not self._ready_sent:
                self._ready_sent = True
                self.send("ready", {"root": root})
            if len(readiers) >= self.ctx.quorum:
                self._deliverable_root = root
        self._try_deliver()

    def _try_deliver(self) -> None:
        if self.completed or self._deliverable_root is None:
            return
        blocks = list(self._blocks.get(self._deliverable_root, {}).values())
        if len(blocks) < self.ctx.small_quorum:
            return
        try:
            value = decode_blocks(blocks)
        except ErasureError:
            return
        self.complete(value)
