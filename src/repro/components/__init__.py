"""Consensus components (the paper's component layer, Fig. 9a).

Broadcast protocols:

* :class:`~repro.components.rbc.BrachaRbc` -- Bracha's reliable broadcast
  (INITIAL / ECHO / READY), the RBC used throughout the paper;
* :class:`~repro.components.rbc_small.RbcSmall` -- the Fig. 5a variant for
  small (two-bit) proposals;
* :class:`~repro.components.rbc_cachin.CachinRbc` -- Cachin's erasure-coded
  RBC (AVID style), provided for completeness / comparison;
* :class:`~repro.components.prbc.Prbc` -- provable reliable broadcast
  (RBC + DONE with a threshold-signature proof), used by Dumbo;
* :class:`~repro.components.cbc.Cbc` -- consistent broadcast
  (INITIAL / ECHO / FINISH with a threshold signature), used by Dumbo;
* :class:`~repro.components.cbc_small.CbcSmall` -- the Fig. 5b variant for
  node-id-list proposals (Dumbo's CBC_commit).

Asynchronous Byzantine agreement:

* :class:`~repro.components.aba_bracha.BrachaAba` -- local-coin ABA (ABA-LC);
* :class:`~repro.components.aba_cachin.CachinAba` -- shared-coin ABA (ABA-SC),
  the Mostefaoui-style binary agreement with a threshold-signature coin;
* :class:`~repro.components.aba_coinflip.CoinFlipAba` -- BEAT's ABA (ABA-CP)
  using threshold coin flipping.

All components run on top of either transport from :mod:`repro.core.batcher`,
so the same protocol logic executes batched (ConsensusBatcher) or unbatched
(baseline), as the paper's safety argument requires.
"""

from repro.components.base import ComponentContext, Component, ComponentRouter
from repro.components.erasure import encode_blocks, decode_blocks, ErasureError
from repro.components.common_coin import CommonCoinManager
from repro.components.rbc import BrachaRbc
from repro.components.rbc_small import RbcSmall
from repro.components.rbc_cachin import CachinRbc
from repro.components.prbc import Prbc
from repro.components.cbc import Cbc
from repro.components.cbc_small import CbcSmall
from repro.components.aba_bracha import BrachaAba
from repro.components.aba_cachin import CachinAba
from repro.components.aba_coinflip import CoinFlipAba

__all__ = [
    "ComponentContext",
    "Component",
    "ComponentRouter",
    "encode_blocks",
    "decode_blocks",
    "ErasureError",
    "CommonCoinManager",
    "BrachaRbc",
    "RbcSmall",
    "CachinRbc",
    "Prbc",
    "Cbc",
    "CbcSmall",
    "BrachaAba",
    "CachinAba",
    "CoinFlipAba",
]
