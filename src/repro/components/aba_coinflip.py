"""BEAT's asynchronous Byzantine agreement (threshold coin flipping) -- ABA-CP.

BEAT keeps HoneyBadgerBFT's structure but replaces the threshold-signature
common coin with threshold *coin flipping*, which is computationally cheaper
on constrained devices (Fig. 10a vs. 10b) at the cost of extra verification
data in the SHARE phase (Section V-A).  The agreement logic is identical to
:class:`~repro.components.aba_cachin.CachinAba`; the difference is the coin
flavour of the :class:`~repro.components.common_coin.CommonCoinManager` this
instance is wired to (``flip`` instead of ``tsig``), which selects the
cheaper cost profile and slightly larger share payload.
"""

from __future__ import annotations

from repro.components.aba_cachin import CachinAba


class CoinFlipAba(CachinAba):
    """One ABA instance whose round coins come from threshold coin flipping."""

    kind = "aba_cp"
    coin_flavor = "flip"
