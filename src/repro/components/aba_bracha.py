"""Bracha's asynchronous Byzantine agreement (local coin) -- the paper's ABA-LC.

Each round has three phases (Fig. 1c).  In every phase a node broadcasts a
vote through a small reliable broadcast (one mini-RBC per voter, which is why
the wired message complexity is O(N^3)); a vote is *accepted* once its
mini-RBC delivers (``2f + 1`` readies).  The round logic follows Bracha's
1984 protocol:

* phase 1: broadcast the current estimate; after ``N - f`` accepted votes,
  adopt the majority value;
* phase 2: broadcast the adopted value; if more than ``(N + f) / 2`` of the
  ``N - f`` accepted votes agree on ``w``, adopt ``w``, otherwise adopt
  "undetermined" (``None``);
* phase 3: broadcast the phase-2 result; among accepted votes, if at least
  ``2f + 1`` carry the same determined value ``w`` the node *decides* ``w``;
  if at least ``f + 1`` do, it adopts ``w``; otherwise it flips its local
  coin and starts the next round.

Nodes that decide broadcast a DECIDED notice; ``f + 1`` matching notices let
lagging nodes decide too, which keeps every honest node live without running
rounds forever.

Agreement and validity hold for up to ``f`` Byzantine nodes; termination is
probabilistic (expected constant rounds when inputs already agree, which is
the common case inside ACS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.components.base import Component, ComponentContext, OutputCallback
from repro.core.packet import ComponentMessage

#: marker for the "undetermined" phase-2/3 value
UNDETERMINED = "?"


@dataclass
class _MiniRbcState:
    """Reliable-broadcast state for one voter's vote in one phase."""

    value: Any = None
    echoes: dict[Any, set[int]] = field(default_factory=dict)
    readies: dict[Any, set[int]] = field(default_factory=dict)
    echo_sent: bool = False
    ready_sent: bool = False
    accepted: bool = False
    accepted_value: Any = None


@dataclass
class _RoundState:
    """Per-round voting state."""

    started_phases: set[int] = field(default_factory=set)
    completed_phases: set[int] = field(default_factory=set)
    mini: dict[tuple[int, int], _MiniRbcState] = field(default_factory=dict)
    my_votes: dict[int, Any] = field(default_factory=dict)


class BrachaAba(Component):
    """One Bracha ABA instance deciding a single bit."""

    kind = "aba_lc"

    def __init__(self, ctx: ComponentContext, instance: int, tag: Any = None,
                 on_output: Optional[OutputCallback] = None,
                 max_rounds: int = 64) -> None:
        super().__init__(ctx, instance, tag, on_output)
        self.max_rounds = max_rounds
        self.estimate: Optional[int] = None
        self.round = 0
        self.decided_value: Optional[int] = None
        self._rounds: dict[int, _RoundState] = {}
        self._decided_notices: dict[int, set[int]] = {}
        self._decided_sent = False
        self._started = False
        self._halted = False
        self.rounds_executed = 0

    # ------------------------------------------------------------------ start
    def start(self, value: int) -> None:
        """Provide this node's binary input and start round 0."""
        if self._started:
            return
        if value not in (0, 1):
            raise ValueError(f"ABA input must be 0 or 1, got {value!r}")
        self._started = True
        self.estimate = value
        self._start_phase(self.round, 1)

    # ----------------------------------------------------------------- handle
    def handle(self, message: ComponentMessage) -> None:
        """Process phase votes and DECIDED notices."""
        if message.phase == "decided":
            self._on_decided(message)
            return
        parts = message.phase.split("_", 1)
        if len(parts) != 2 or not parts[0].startswith("p"):
            return
        try:
            phase_number = int(parts[0][1:])
        except ValueError:
            return
        kind = parts[1]
        round_number = message.round
        state = self._rounds.setdefault(round_number, _RoundState())
        if kind == "initial":
            self._on_vote_initial(state, round_number, phase_number, message)
        elif kind == "echo":
            self._on_vote_echo(state, round_number, phase_number, message)
        elif kind == "ready":
            self._on_vote_ready(state, round_number, phase_number, message)

    # ------------------------------------------------------- mini-RBC machinery
    def _mini(self, state: _RoundState, phase: int, voter: int) -> _MiniRbcState:
        return state.mini.setdefault((phase, voter), _MiniRbcState())

    def _on_vote_initial(self, state: _RoundState, round_number: int,
                         phase: int, message: ComponentMessage) -> None:
        voter = message.sender
        mini = self._mini(state, phase, voter)
        if mini.value is None:
            mini.value = message.payload.get("value")
            if not mini.echo_sent:
                mini.echo_sent = True
                self.send(f"p{phase}_echo", {"voter": voter, "value": mini.value},
                          round_number=round_number, slot=voter)
        self._check_mini(state, round_number, phase, voter)

    def _on_vote_echo(self, state: _RoundState, round_number: int,
                      phase: int, message: ComponentMessage) -> None:
        voter = message.payload.get("voter")
        value = message.payload.get("value")
        if voter is None:
            return
        mini = self._mini(state, phase, voter)
        mini.echoes.setdefault(value, set()).add(message.sender)
        self._check_mini(state, round_number, phase, voter)

    def _on_vote_ready(self, state: _RoundState, round_number: int,
                       phase: int, message: ComponentMessage) -> None:
        voter = message.payload.get("voter")
        value = message.payload.get("value")
        if voter is None:
            return
        mini = self._mini(state, phase, voter)
        mini.readies.setdefault(value, set()).add(message.sender)
        self._check_mini(state, round_number, phase, voter)

    def _check_mini(self, state: _RoundState, round_number: int, phase: int,
                    voter: int) -> None:
        mini = self._mini(state, phase, voter)
        for value, echoers in mini.echoes.items():
            if len(echoers) >= self.ctx.quorum and not mini.ready_sent:
                mini.ready_sent = True
                self.send(f"p{phase}_ready", {"voter": voter, "value": value},
                          round_number=round_number, slot=voter)
        for value, readiers in mini.readies.items():
            if len(readiers) >= self.ctx.small_quorum and not mini.ready_sent:
                mini.ready_sent = True
                self.send(f"p{phase}_ready", {"voter": voter, "value": value},
                          round_number=round_number, slot=voter)
            if len(readiers) >= self.ctx.quorum and not mini.accepted:
                mini.accepted = True
                mini.accepted_value = value
        self._check_phase_completion(state, round_number, phase)

    # ----------------------------------------------------------- round logic
    def _start_phase(self, round_number: int, phase: int) -> None:
        state = self._rounds.setdefault(round_number, _RoundState())
        if phase in state.started_phases:
            return
        state.started_phases.add(phase)
        vote = self._phase_input(round_number, phase)
        state.my_votes[phase] = vote
        self.send(f"p{phase}_initial", {"value": vote},
                  round_number=round_number, payload_bytes=1)

    def _phase_input(self, round_number: int, phase: int) -> Any:
        state = self._rounds.setdefault(round_number, _RoundState())
        if phase == 1:
            return self.estimate
        return state.my_votes.get(phase, self.estimate)

    def _accepted_votes(self, state: _RoundState, phase: int) -> dict[int, Any]:
        return {voter: mini.accepted_value
                for (mini_phase, voter), mini in state.mini.items()
                if mini_phase == phase and mini.accepted}

    def _check_phase_completion(self, state: _RoundState, round_number: int,
                                phase: int) -> None:
        if self._halted or round_number != self.round:
            return
        if phase not in state.started_phases or phase in state.completed_phases:
            return
        accepted = self._accepted_votes(state, phase)
        needed = self.ctx.num_nodes - self.ctx.faults
        if len(accepted) < needed:
            return
        state.completed_phases.add(phase)
        counts: dict[Any, int] = {}
        for value in accepted.values():
            counts[value] = counts.get(value, 0) + 1
        if phase == 1:
            majority_value = max(counts, key=counts.get)
            state.my_votes[2] = majority_value
            self._start_phase(round_number, 2)
        elif phase == 2:
            threshold = (self.ctx.num_nodes + self.ctx.faults) / 2.0
            determined = [value for value, count in counts.items()
                          if count > threshold and value != UNDETERMINED]
            state.my_votes[3] = determined[0] if determined else UNDETERMINED
            self._start_phase(round_number, 3)
        else:
            self._finish_round(round_number, counts)

    def _finish_round(self, round_number: int, counts: dict[Any, int]) -> None:
        self.rounds_executed += 1
        determined = {value: count for value, count in counts.items()
                      if value != UNDETERMINED and value is not None}
        best_value, best_count = None, 0
        for value, count in determined.items():
            if count > best_count:
                best_value, best_count = value, count
        if best_count >= self.ctx.quorum:
            self.estimate = best_value
            self._decide(best_value)
        elif self.decided_value is not None:
            # Already decided in an earlier round: keep helping with that value.
            self.estimate = self.decided_value
        elif best_count >= self.ctx.small_quorum:
            self.estimate = best_value
        else:
            self.estimate = self.ctx.rng.randrange(2)
        # Keep participating until enough DECIDED notices exist that every
        # honest node is guaranteed to see f + 1 of them (standard termination
        # helper for round-based ABA).
        if not self._halted:
            self._advance_round(round_number + 1)

    def _advance_round(self, next_round: int) -> None:
        if self._halted:
            return
        if next_round >= self.max_rounds:
            # Safety net against pathological schedules in bounded experiments.
            self._decide(self.estimate if self.estimate in (0, 1) else 0)
            self._halted = True
            return
        self.round = next_round
        # Slots of earlier rounds are intentionally kept in the transport so
        # that NACK repair can still serve laggards that are stuck in an older
        # round; dirty-only packet building keeps them off the air otherwise.
        self._start_phase(next_round, 1)
        # Re-examine any votes that arrived for this round before we entered it.
        state = self._rounds.setdefault(next_round, _RoundState())
        for phase in (1, 2, 3):
            self._check_phase_completion(state, next_round, phase)

    # ----------------------------------------------------------------- decide
    def _decide(self, value: int) -> None:
        if self.decided_value is None:
            self.decided_value = value
        if not self._decided_sent:
            self._decided_sent = True
            self._decided_notices.setdefault(value, set()).add(self.ctx.node_id)
            self.send("decided", {"value": value}, payload_bytes=1)
        self.complete(value)
        self._maybe_halt()

    def _on_decided(self, message: ComponentMessage) -> None:
        value = message.payload.get("value")
        if value not in (0, 1):
            return
        self._decided_notices.setdefault(value, set()).add(message.sender)
        if (len(self._decided_notices[value]) >= self.ctx.small_quorum
                and not self.completed):
            self.estimate = value
            self._decide(value)
        self._maybe_halt()

    def _maybe_halt(self) -> None:
        """Stop running rounds once enough nodes are known to have decided."""
        if self.decided_value is None:
            return
        notices = len(self._decided_notices.get(self.decided_value, set()))
        if notices >= self.ctx.quorum:
            self._halted = True
