"""Pytest root conftest.

Ensures ``src/`` is importable even when the package has not been installed
(useful in offline environments where ``pip install -e .`` cannot build an
editable wheel).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
