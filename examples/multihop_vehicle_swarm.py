#!/usr/bin/env python3
"""Multi-hop consensus for a smart-car swarm (the paper's Fig. 9b scenario).

Sixteen vehicles are organised into four road-segment clusters; each cluster
shares a short-range channel and elects a leader that joins a global
consensus over the routed backbone (Section V-B's two-phase construction,
akin to sharding).  The example runs wireless HoneyBadgerBFT-SC per cluster
and globally, then prints per-cluster local latency and the global ordering.

Usage::

    python examples/multihop_vehicle_swarm.py [--clusters 4] [--seed 9]
"""

import argparse

from repro.testbed import Scenario, run_multihop_consensus
from repro.testbed.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clusters", type=int, default=4)
    parser.add_argument("--cluster-size", type=int, default=4)
    parser.add_argument("--protocol", default="honeybadger-sc")
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    scenario = Scenario.multi_hop(args.clusters, args.cluster_size)
    print(f"{scenario.num_nodes} vehicles in {args.clusters} clusters; "
          f"local + global consensus: {args.protocol} (ConsensusBatcher).\n")

    result = run_multihop_consensus(args.protocol, scenario, batch_size=6,
                                    transaction_bytes=64, batched=True,
                                    seed=args.seed)
    if not result.decided:
        print("Global consensus did not complete within the scenario timeout.")
        return

    rows = [[f"cluster {cluster}", round(latency, 2)]
            for cluster, latency in sorted(result.local_latencies_s.items())]
    print(format_table(["cluster", "local consensus latency s"], rows,
                       title="Phase 1: local consensus inside each cluster"))
    print()
    print(format_table(
        ["metric", "value"],
        [["global latency s", round(result.latency_s, 2)],
         ["slowest local latency s", round(result.slowest_local_latency_s, 2)],
         ["committed transactions", result.committed_transactions],
         ["throughput TPM", round(result.throughput_tpm, 1)],
         ["channel accesses (all channels)", result.channel_accesses],
         ["collisions", result.collisions]],
        title="Phase 2: global consensus among the cluster leaders"))
    print("\nNote (matching the paper): multi-hop latency is higher than the "
          "slowest local consensus but far from a naive doubling, because the "
          "global phase overlaps with the stragglers' local phase.")


if __name__ == "__main__":
    main()
