#!/usr/bin/env python3
"""Quickstart: one epoch of wireless HoneyBadgerBFT on the simulated testbed.

Runs the ConsensusBatcher-batched, shared-coin HoneyBadgerBFT on a four-node
single-hop LoRa-class network, then repeats the run with the unbatched
baseline transport so the improvement the paper reports is visible
immediately.

Usage::

    python examples/quickstart.py [--protocol beat] [--seed 7]
"""

import argparse

from repro.protocols.base import PROTOCOL_NAMES
from repro.testbed import Scenario, run_consensus
from repro.testbed.reporting import format_table, improvement_percent, increase_percent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", default="honeybadger-sc",
                        choices=sorted(PROTOCOL_NAMES))
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scenario = Scenario.single_hop(args.nodes)
    print(f"Running {args.protocol} on a {args.nodes}-node single-hop wireless "
          f"network ({scenario.radio.name}, {scenario.ec_curve} + "
          f"{scenario.threshold_curve})...\n")

    batched = run_consensus(args.protocol, scenario, batch_size=args.batch_size,
                            batched=True, seed=args.seed)
    baseline = run_consensus(args.protocol, scenario, batch_size=args.batch_size,
                             batched=False, seed=args.seed)

    rows = []
    for label, result in (("ConsensusBatcher", batched), ("baseline", baseline)):
        rows.append([label,
                     "yes" if result.decided else "no",
                     round(result.latency_s, 2),
                     round(result.throughput_tpm, 1),
                     result.committed_transactions,
                     result.channel_accesses,
                     result.collisions])
    print(format_table(
        ["transport", "decided", "latency s", "TPM", "committed tx",
         "channel accesses", "collisions"],
        rows, title=f"{args.protocol} (seed {args.seed})"))

    if batched.decided and baseline.decided:
        print(f"\nConsensusBatcher reduces latency by "
              f"{improvement_percent(baseline.latency_s, batched.latency_s):.0f}% "
              f"and increases throughput by "
              f"{increase_percent(baseline.throughput_tpm, batched.throughput_tpm):.0f}% "
              f"on this run (paper, single-hop: 52-69% / 50-70%).")
    print(f"\nAgreed block digest: {batched.block_digest[:16]}... "
          f"({batched.committed_transactions} transactions)")


if __name__ == "__main__":
    main()
