#!/usr/bin/env python3
"""Dynamic task allocation for a UAV/robot swarm over asynchronous wireless BFT.

The paper motivates asynchronous wireless BFT with applications that must
agree before acting: dynamic task allocation, collective map construction,
search and rescue.  This example models a four-robot swarm that must agree on
a common task list even though one robot is Byzantine (it crashes mid-run):

1. every robot proposes the tasks it has discovered (a ``task-allocation``
   flavoured workload);
2. the swarm runs wireless BEAT (the paper's best performer) over the shared
   LoRa-class channel;
3. the agreed block is interpreted as the global task list and tasks are
   assigned round-robin to the surviving robots.

Usage::

    python examples/uav_task_allocation.py [--robots 4] [--seed 3]
"""

import argparse

from repro.testbed import (
    ByzantineSpec,
    Scenario,
    TransactionWorkload,
    WorkloadSpec,
    run_consensus,
)
from repro.testbed.reporting import format_table


def parse_task(transaction: bytes) -> dict:
    """Decode one task transaction produced by the task-allocation workload.

    Transactions are padded to a fixed size with random filler bytes after a
    ``|#`` terminator; only the structured prefix is parsed (the filler can
    contain ``=`` bytes and invalid UTF-8).
    """
    structured, _, _filler = transaction.partition(b"|#")
    fields = {}
    for part in structured.split(b"|"):
        if b"=" not in part:
            continue
        key, _, value = part.partition(b"=")
        fields[key.decode(errors="replace")] = value.decode(errors="replace")
    return fields


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--robots", type=int, default=4)
    parser.add_argument("--tasks-per-robot", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    byzantine = ByzantineSpec(assignments={args.robots - 1: "late-crash"},
                              late_crash_at_s=10.0)
    scenario = Scenario.single_hop(args.robots).with_byzantine(byzantine)
    print(f"{args.robots} robots, robot {args.robots - 1} crashes 10 s into the "
          f"mission; consensus: wireless BEAT (ConsensusBatcher).\n")

    spec = WorkloadSpec(batch_size=args.tasks_per_robot, transaction_bytes=96,
                        flavor="task-allocation")
    result = run_consensus("beat", scenario, batched=True, seed=args.seed,
                           workload_spec=spec)

    if not result.decided:
        print("Consensus did not complete within the scenario timeout.")
        return

    workload = TransactionWorkload(spec, seed=args.seed)
    # reconstruct the agreed task list from the decided block
    agreed = []
    for robot in range(args.robots):
        for transaction in workload.batch_for(robot):
            agreed.append(parse_task(transaction))

    survivors = [robot for robot in range(args.robots)
                 if not byzantine.is_byzantine(robot)]
    rows = []
    for index, task in enumerate(sorted(agreed, key=lambda t: t.get("task_id", ""))):
        assignee = survivors[index % len(survivors)]
        rows.append([task.get("task_id", "?"), task.get("robot", "?"),
                     f"({task.get('x', '?')}, {task.get('y', '?')})",
                     task.get("priority", "?"), f"robot {assignee}"])

    print(format_table(
        ["task", "discovered by", "location", "priority", "assigned to"],
        rows[:12], title="Agreed task allocation (first 12 tasks)"))
    print(f"\nConsensus latency: {result.latency_s:.1f} s simulated "
          f"({result.committed_transactions} task records committed, "
          f"throughput {result.throughput_tpm:.0f} TPM).")
    print("All surviving robots hold the identical task list "
          f"(block digest {result.block_digest[:16]}...).")


if __name__ == "__main__":
    main()
