#!/usr/bin/env python3
"""Scenario replay: stream a protocol through a time-varying network pack.

Loads one of the shipped scenario packs (``repro.testbed.scenario_packs``)
-- a declarative timeline of network phases that degrade and heal the
wireless channel on the virtual-time axis -- and drives a multi-epoch
HoneyBadger stream through it, printing the per-phase timeline: committed
throughput, median epoch latency and adversary drops per phase, plus the
degradation/recovery invariant verdicts.

Usage::

    python examples/scenario_replay.py [--pack burst-loss] [--protocol beat]
    python examples/scenario_replay.py --list
"""

import argparse

from repro.protocols.base import PROTOCOL_NAMES
from repro.testbed import Scenario
from repro.testbed.invariants import (
    check_ledger_continuity,
    check_scenario_recovery,
)
from repro.testbed.reporting import format_table
from repro.testbed.scenario_packs import available_packs, load_pack
from repro.testbed.streaming import StreamingSpec, run_streaming_consensus
from repro.testbed.workload import ArrivalSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pack", default="intermittent-connectivity",
                        choices=available_packs())
    parser.add_argument("--protocol", default="honeybadger-sc",
                        choices=sorted(PROTOCOL_NAMES))
    parser.add_argument("--epochs", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--list", action="store_true",
                        help="list the shipped packs and exit")
    args = parser.parse_args()

    if args.list:
        for name in available_packs():
            pack = load_pack(name)
            print(f"{name}: {len(pack.phases)} phases, "
                  f"{pack.total_duration_s:.0f}s -- {pack.description}")
        return

    pack = load_pack(args.pack)
    print(f"Streaming {args.epochs} epochs of {args.protocol} through pack "
          f"'{pack.name}' ({len(pack.phases)} phases, "
          f"{pack.total_duration_s:.0f}s of virtual time)...\n")

    scenario = Scenario.single_hop(4).replace(timeout_s=3000.0)
    spec = StreamingSpec(
        epochs=args.epochs, batch_size=4, warmup=64,
        arrival=ArrivalSpec(rate_tps=1.0, transaction_bytes=32,
                            max_mempool=512))
    result = run_streaming_consensus(args.protocol, scenario, spec,
                                     seed=args.seed, pack=pack)

    rows = []
    for record in result.phases:
        end = "end" if record.end_s == float("inf") \
            else f"{record.end_s:.0f}"
        rows.append([record.index, record.name,
                     f"{record.start_s:.0f}-{end}",
                     "degraded" if record.degraded else "nominal",
                     record.epochs, record.committed_transactions,
                     round(record.throughput_tps, 2),
                     round(record.p50_latency_s, 2),
                     record.adversary_drops])
    print(format_table(
        ["#", "phase", "window s", "state", "epochs", "committed tx",
         "tput tx/s", "p50 epoch s", "drops"],
        rows, title=f"{args.protocol} x {pack.name} (seed {args.seed})"))

    print(f"\nStream {'decided' if result.decided else 'STALLED'}: "
          f"{result.epochs_completed}/{args.epochs} epochs, "
          f"{result.committed_transactions} transactions in "
          f"{result.duration_s:.0f}s of virtual time.")
    for verdict in (check_ledger_continuity(result.per_epoch,
                                            result.ledger_digest),
                    check_scenario_recovery(result.per_epoch,
                                            pack.heal_times())):
        status = "ok" if verdict.ok else "FAILED"
        print(f"  invariant {verdict.name}: {status} -- {verdict.detail}")
    print(f"\nLedger digest: {result.ledger_digest[:16]}...")


if __name__ == "__main__":
    main()
