#!/usr/bin/env python3
"""Multi-hop consensus on the sharded simulator, past the classic ceiling.

Runs the two-phase construction (local consensus per cluster, global
consensus among leaders) with one event loop per cluster under conservative
synchronization: shards only advance to the proven-safe horizon
``min(neighbour bounds) + lookahead`` and exchange serialized backbone
packets at barrier windows.  The merged result is bit-identical for any
``--workers`` count, so the demo prints the per-shard event split (the
quantity sharding actually balances) next to the familiar latency table.

Usage::

    python examples/sharded_scale.py [--clusters 8] [--cluster-size 8] \
        [--workers 2] [--protocol honeybadger-sc] [--seed 0]

Try ``--clusters 16 --cluster-size 16`` (a ~30s run) or 32x32 (a few
minutes, ~1.6M events) -- grids the single-heap simulator was previously
impractical for.
"""

import argparse
import time

from repro.testbed import Scenario
from repro.testbed.reporting import format_table
from repro.testbed.sharding import run_sharded_multihop_consensus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clusters", type=int, default=8)
    parser.add_argument("--cluster-size", type=int, default=8)
    parser.add_argument("--shards", type=int, default=0,
                        help="shard count (default: one per cluster)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes executing the shards")
    parser.add_argument("--protocol", default="honeybadger-sc")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    shards = args.shards or args.clusters
    scenario = Scenario.scale_multi_hop(args.clusters, args.cluster_size)
    print(f"{scenario.num_nodes} nodes in {args.clusters} clusters; "
          f"{shards} shards on {args.workers} worker(s); "
          f"local + global consensus: {args.protocol}.\n")

    shard_stats: list = []
    start = time.perf_counter()
    result = run_sharded_multihop_consensus(
        args.protocol, scenario, shards=shards, shard_workers=args.workers,
        seed=args.seed, shard_stats=shard_stats)
    wall = time.perf_counter() - start
    if not result.decided:
        print("Global consensus did not complete within the scenario timeout.")
        return

    total_events = max(result.sim_events, 1)
    rows = [[f"shard {stats['shard']}",
             f"{stats['clusters'][0]}..{stats['clusters'][-1]}",
             stats["events"],
             f"{100.0 * stats['events'] / total_events:.1f}%"]
            for stats in shard_stats]
    print(format_table(["shard", "clusters", "events", "share"], rows,
                       title="Per-shard event split (what sharding balances)"))
    print()
    slowest = max(result.local_latencies_s.values())
    print(format_table(
        ["metric", "value"],
        [["global latency s", round(result.latency_s, 3)],
         ["slowest local latency s", round(slowest, 3)],
         ["committed transactions", result.committed_transactions],
         ["simulated events", result.sim_events],
         ["bytes sent", result.bytes_sent],
         ["collisions", result.collisions],
         ["wall clock s", round(wall, 1)]],
        title="Merged run (bit-identical for any --workers)"))
    print("\nDeterminism contract: rerun with a different --workers value "
          "and every number above reproduces exactly; only the wall clock "
          "changes.")


if __name__ == "__main__":
    main()
