#!/usr/bin/env python3
"""Anatomy of ConsensusBatcher: where the channel accesses go.

Runs the component-level experiments behind Table I and Figs. 11-12 and
prints, for each consensus component, the analytical message overhead per
node next to the channel accesses measured on the simulator -- batched vs.
baseline -- plus the O(N^2) -> O(N) NACK compression.

Usage::

    python examples/batching_anatomy.py [--nodes 4]
"""

import argparse

from repro.core.nack import CompressedNack, PerInstanceNack
from repro.core.overhead import MessageOverheadModel
from repro.testbed import run_aba_experiment, run_broadcast_experiment
from repro.testbed.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()
    n = args.nodes

    model = MessageOverheadModel(n)
    rows = []
    experiments = {
        "RBC": lambda batched: run_broadcast_experiment(
            "rbc", parallelism=n, num_nodes=n, batched=batched, seed=args.seed),
        "CBC": lambda batched: run_broadcast_experiment(
            "cbc", parallelism=n, num_nodes=n, batched=batched, seed=args.seed),
        "PRBC": lambda batched: run_broadcast_experiment(
            "prbc", parallelism=n, num_nodes=n, batched=batched, seed=args.seed),
        "Cachin's ABA": lambda batched: run_aba_experiment(
            "sc", parallel_instances=n, num_nodes=n, batched=batched,
            seed=args.seed),
    }
    for component, runner in experiments.items():
        analytical = model.row(component)
        batched = runner(True)
        baseline = runner(False)
        rows.append([component,
                     analytical.wired,
                     analytical.wireless_baseline,
                     analytical.consensus_batcher,
                     round(baseline.channel_accesses_per_node, 1),
                     round(batched.channel_accesses_per_node, 1),
                     round(baseline.latency_s, 1),
                     round(batched.latency_s, 1)])

    print(format_table(
        ["component", "wired (analytic)", "baseline (analytic)",
         "batcher (analytic)", "baseline (measured)", "batcher (measured)",
         "baseline latency s", "batcher latency s"],
        rows,
        title=f"Message overhead per node and latency, N = {n} parallel instances"))

    naive = PerInstanceNack(num_instances=n, num_nodes=n)
    compressed = CompressedNack(num_instances=n)
    print(f"\nNACK encoding for {n} batched instances: "
          f"{naive.size_bits()} bits naive (O(N^2)) vs "
          f"{compressed.size_bits()} bits compressed (O(N)) -- "
          f"a {naive.size_bits() / compressed.size_bits():.0f}x saving in packet space.")


if __name__ == "__main__":
    main()
