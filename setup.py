"""Setuptools entry point.

A plain ``setup.py`` is kept (instead of relying solely on PEP 517/660) so
that ``pip install -e .`` works in fully offline environments where the
``wheel`` package is unavailable and pip falls back to the legacy editable
install path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Asynchronous BFT Consensus Made Wireless' (ICDCS 2025): "
        "ConsensusBatcher, wireless HoneyBadgerBFT/BEAT/Dumbo, and a simulated "
        "wireless testbed."
    ),
    license="Apache-2.0",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={
        "repro.testbed": ["packs/*.json"],
        # The libgmp shim source ships with the package so the compiled
        # tier of repro.crypto.backend can build itself from an installed
        # wheel, not just a source checkout.
        "repro.crypto.backend": ["*.c"],
    },
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        # Optional acceleration tier for REPRO_CRYPTO_BACKEND=auto/native;
        # without it the backend probes the system libgmp, then falls back
        # to pure Python.
        "native": ["gmpy2>=2.1"],
    },
)
